package pdn

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func TestTransientWindowBasics(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	active := n.AllOnMask(0)
	win, err := n.TransientWindow(0, 0, cur, active, nil, 2000, 4.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 2000 {
		t.Fatalf("window has %d cycles", len(win))
	}
	for i, v := range win {
		if v < 0 || math.IsNaN(v) || v > 100 {
			t.Fatalf("cycle %d: noise %v out of range", i, v)
		}
	}
}

func TestTransientWindowDeterminism(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	active := n.AllOnMask(0)
	a, _ := n.TransientWindow(0, 0, cur, active, nil, 500, 4.0, 7)
	b, _ := n.TransientWindow(0, 0, cur, active, nil, 500, 4.0, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different windows")
		}
	}
	c, _ := n.TransientWindow(0, 0, cur, active, nil, 500, 4.0, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical windows")
	}
}

func TestTransientWindowBurstShape(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	cfg := n.Config()
	// Disable ripple so the burst shape is exact.
	quiet := cfg
	quiet.RippleSigma = 0
	qn, err := NewNetwork(chip, quiet)
	if err != nil {
		t.Fatal(err)
	}
	active := qn.AllOnMask(0)
	burst := Burst{StartCycle: 100, Cycles: 50, Amp: 1.0}
	win, err := qn.TransientWindow(0, 0, cur, active, []Burst{burst}, 400, 4.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := win[0]
	// Flat before the burst.
	for i := 0; i < 100; i++ {
		if math.Abs(win[i]-base) > 1e-9 {
			t.Fatalf("cycle %d: noise %v differs from base %v before burst", i, win[i], base)
		}
	}
	// Peak within the plateau.
	peakAt, peak := 0, 0.0
	for i, v := range win {
		if v > peak {
			peak, peakAt = v, i
		}
	}
	if peakAt < 100 || peakAt > 100+quiet.BurstRiseCycles+50 {
		t.Errorf("peak at cycle %d, expected within the burst", peakAt)
	}
	if peak <= base {
		t.Error("burst did not raise the noise")
	}
	// Decays back toward base afterwards.
	if last := win[len(win)-1]; last > base+0.3*(peak-base) {
		t.Errorf("noise %v has not decayed near base %v by window end", last, base)
	}
}

func TestTransientWindowValidation(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	active := n.AllOnMask(0)
	if _, err := n.TransientWindow(0, 0, cur, active, nil, 0, 4.0, 1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur, active, nil, 100, 0, 1); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := n.TransientWindow(0, 99, cur, active, nil, 100, 4.0, 1); err == nil {
		t.Error("bad block index accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur[:3], active, nil, 100, 4.0, 1); err == nil {
		t.Error("short current vector accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur, active[:2], nil, 100, 4.0, 1); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur, make([]bool, len(active)), nil, 100, 4.0, 1); err == nil {
		t.Error("all-off mask accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur, active, []Burst{{StartCycle: -1, Cycles: 10, Amp: 1}}, 100, 4.0, 1); err == nil {
		t.Error("negative burst start accepted")
	}
	if _, err := n.TransientWindow(0, 0, cur, active, []Burst{{StartCycle: 0, Cycles: 0, Amp: 1}}, 100, 4.0, 1); err == nil {
		t.Error("zero burst length accepted")
	}
}

func TestSampleSpec(t *testing.T) {
	s := DefaultSampleSpec()
	if s.Samples != 200 || s.WindowCycles != 2000 || s.WarmupCycles != 1000 {
		t.Errorf("default spec %+v does not match the paper", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.WarmupCycles = 2000
	if err := bad.Validate(); err == nil {
		t.Error("warm-up as long as window accepted")
	}
	bad = s
	bad.Samples = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero samples accepted")
	}

	window := make([]float64, s.WindowCycles)
	for i := range window {
		window[i] = float64(i)
	}
	// Poison the warm-up with a huge value: it must be ignored.
	window[10] = 1e9
	m, err := s.MaxAfterWarmup(window)
	if err != nil {
		t.Fatal(err)
	}
	if m != float64(s.WindowCycles-1) {
		t.Errorf("MaxAfterWarmup = %v, want %v", m, s.WindowCycles-1)
	}
	if _, err := s.MaxAfterWarmup(window[:100]); err == nil {
		t.Error("wrong window length accepted")
	}
}

func TestLDOvsFIVRWindow(t *testing.T) {
	// Fig. 15: under all-on with identical workloads the LDO's faster
	// response yields slightly lower maximum noise than the buck.
	chip := floorplan.MustPOWER8()
	cur := loadedCurrents(chip)
	burst := []Burst{{StartCycle: 50, Cycles: 60, Amp: 1.2}}
	run := func(cfg Config) float64 {
		n, err := NewNetwork(chip, cfg)
		if err != nil {
			t.Fatal(err)
		}
		win, err := n.TransientWindow(0, 0, cur, n.AllOnMask(0), burst, 500, 4.0, 3)
		if err != nil {
			t.Fatal(err)
		}
		m := 0.0
		for _, v := range win {
			if v > m {
				m = v
			}
		}
		return m
	}
	fivr := run(DefaultConfig())
	ldo := run(LDOConfig())
	if ldo >= fivr {
		t.Errorf("LDO max noise %v not below FIVR %v", ldo, fivr)
	}
	// The gap is small (the paper reports ≈0.7% average, ≈1.1% worst).
	if fivr-ldo > 3 {
		t.Errorf("LDO advantage %v%% implausibly large", fivr-ldo)
	}
}

// TestTransientRippleStatistics: the AR(1) ripple's empirical standard
// deviation must match the configured stationary sigma.
func TestTransientRippleStatistics(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	active := n.AllOnMask(0)
	win, err := n.TransientWindow(0, 0, cur, active, nil, 20000, 4.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range win {
		mean += v
	}
	mean /= float64(len(win))
	var variance float64
	for _, v := range win {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(win))
	// noise% = base·(1+ripple)·R/V·100 + shared → sd(noise) =
	// base·R/V·100·sigma. Recover sigma empirically.
	reff := n.EffectiveResistance(0, 0, active)
	base := cur[chip.Domains[0].Blocks[0]] * n.Config().ServiceAreaMM2 / n.Config().ServiceAreaMM2
	scale := base * reff / n.Config().VddV * 100
	gotSigma := math.Sqrt(variance) / scale
	if math.Abs(gotSigma-n.Config().RippleSigma) > 0.01 {
		t.Errorf("empirical ripple sigma %v, configured %v", gotSigma, n.Config().RippleSigma)
	}
}
