package pdn

import (
	"fmt"
	"math"
)

// The nodal matrix of a domain mesh is symmetric positive definite: a
// 5-point grid Laplacian plus the active regulators' source conductances
// on the diagonal. Its half-bandwidth is nx (row-major node numbering),
// and — crucially — the matrix depends only on the active-VR mask, not
// on the load currents, which enter as the right-hand side. Mesh.Solve
// therefore factors once per mask (O(n·bw²), cached in an LRU) and
// re-solves each current vector by substitution (O(n·bw)), replacing
// the SOR sweep that used to iterate hundreds of times per call.

// meshFactor is the banded Cholesky factor L of one mask's nodal matrix.
// Row-major half-band storage: l[i*(bw+1)+d] holds L[i][i-bw+d], so the
// diagonal of row i sits at d = bw.
type meshFactor struct {
	l []float64
}

// factorize computes the banded Cholesky factor of the nodal matrix for
// the given per-node source conductances. g is the grid segment
// conductance (1/SheetOhm).
func (m *Mesh) factorize(srcG []float64, g float64) (*meshFactor, error) {
	n := m.nx * m.ny
	bw := m.nx
	stride := bw + 1
	l := make([]float64, n*stride)

	// aij returns the nodal matrix entry A[i][j] for j <= i: the diagonal
	// carries the neighbor conductances plus the source conductance, and
	// the only sub-diagonal entries are the west (-g, same row) and south
	// (-g, row below) grid segments.
	aij := func(i, j int) float64 {
		if i == j {
			ix, iy := i%m.nx, i/m.nx
			var gsum float64
			if ix > 0 {
				gsum += g
			}
			if ix < m.nx-1 {
				gsum += g
			}
			if iy > 0 {
				gsum += g
			}
			if iy < m.ny-1 {
				gsum += g
			}
			return gsum + srcG[i]
		}
		if j == i-1 && i%m.nx != 0 {
			return -g
		}
		if j == i-bw {
			return -g
		}
		return 0
	}

	for i := 0; i < n; i++ {
		jmin := i - bw
		if jmin < 0 {
			jmin = 0
		}
		for j := jmin; j <= i; j++ {
			sum := aij(i, j)
			for k := jmin; k < j; k++ {
				sum -= l[i*stride+(bw-i+k)] * l[j*stride+(bw-j+k)]
			}
			if j < i {
				l[i*stride+(bw-i+j)] = sum / l[j*stride+bw]
				continue
			}
			if !(sum > 0) {
				// The matrix is SPD whenever any regulator is active; a
				// non-positive pivot means the mask left the grid floating.
				return nil, fmt.Errorf("pdn: mesh nodal matrix not positive definite at node %d", i)
			}
			l[i*stride+bw] = math.Sqrt(sum)
		}
	}
	return &meshFactor{l: l}, nil
}

// solve performs the two triangular substitutions L·Lᵀ·x = b, writing
// the solution over b.
func (f *meshFactor) solve(b []float64, nx int) {
	n := len(b)
	bw := nx
	stride := bw + 1
	l := f.l
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		kmin := i - bw
		if kmin < 0 {
			kmin = 0
		}
		sum := b[i]
		for k := kmin; k < i; k++ {
			sum -= l[i*stride+(bw-i+k)] * b[k]
		}
		b[i] = sum / l[i*stride+bw]
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		kmax := i + bw
		if kmax > n-1 {
			kmax = n - 1
		}
		sum := b[i]
		for k := i + 1; k <= kmax; k++ {
			sum -= l[k*stride+(bw-k+i)] * b[k]
		}
		b[i] = sum / l[i*stride+bw]
	}
}
