package pdn

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/invariant"
	"thermogater/internal/workload"
)

// Burst is one di/dt event inside a transient window.
type Burst struct {
	// StartCycle is the onset, in cycles from window start.
	StartCycle int
	// Cycles is the plateau duration.
	Cycles int
	// Amp is the surge as a fraction of the block's base current.
	Amp float64
}

// TransientWindow simulates cycle-level voltage noise at one load block
// over a window of the given length, reproducing the kind of trace Fig. 14
// plots: base current with AR(1) ripple, plus di/dt bursts with a linear
// rise, a plateau and an exponential decay, seen through the grid
// impedance and the lagging-regulator transient impedance. It returns the
// per-cycle noise in percent of nominal Vdd.
//
// domain and bi index the Vdd-domain and its block (as in Domain.Blocks);
// blockCurrent holds amps per global block ID; active masks the domain's
// regulators. The window is deterministic for a given seed.
func (n *Network) TransientWindow(domain, bi int, blockCurrent []float64, active []bool, bursts []Burst, cycles int, clockGHz float64, seed uint64) ([]float64, error) {
	if cycles <= 0 {
		return nil, errors.New("pdn: transient window needs positive length")
	}
	if clockGHz <= 0 {
		return nil, errors.New("pdn: non-positive clock")
	}
	d := &n.chip.Domains[domain]
	if bi < 0 || bi >= len(d.Blocks) {
		return nil, fmt.Errorf("pdn: block index %d outside domain %s", bi, d.Name)
	}
	if len(blockCurrent) != len(n.chip.Blocks) {
		return nil, fmt.Errorf("pdn: %d block currents, chip has %d blocks",
			len(blockCurrent), len(n.chip.Blocks))
	}
	if len(active) != len(d.Regulators) {
		return nil, fmt.Errorf("pdn: active mask size %d, domain has %d regulators",
			len(active), len(d.Regulators))
	}
	reff := n.EffectiveResistance(domain, bi, active)
	if math.IsInf(reff, 1) {
		return nil, fmt.Errorf("pdn: domain %s has no active regulator", d.Name)
	}
	for _, b := range bursts {
		if b.StartCycle < 0 || b.Cycles <= 0 || b.Amp < 0 {
			return nil, fmt.Errorf("pdn: invalid burst %+v", b)
		}
	}

	var domCurrent float64
	for _, bid := range d.Blocks {
		if c := blockCurrent[bid]; c > 0 {
			domCurrent += c
		}
	}
	base := blockCurrent[d.Blocks[bi]]
	if base < 0 {
		base = 0
	}
	base *= n.conc[domain][bi]
	shared := domCurrent * n.cfg.RSharedOhm

	rng := workload.NewRNG(seed ^ 0x9d4e)
	out := make([]float64, cycles)
	ripple := 0.0
	innov := n.cfg.RippleSigma * math.Sqrt(1-n.cfg.RipplePhi*n.cfg.RipplePhi)
	for t := 0; t < cycles; t++ {
		ripple = n.cfg.RipplePhi*ripple + innov*rng.Norm()
		i := base * (1 + ripple)
		if i < 0 {
			i = 0
		}
		var surge float64
		for _, b := range bursts {
			surge += base * b.Amp * burstEnvelope(t, b, n.cfg)
		}
		ztrans := reff
		if surge > 0 {
			// Work out the transient factor for the dominant burst length;
			// using the first active burst keeps this O(1) per cycle.
			for _, b := range bursts {
				if t >= b.StartCycle && burstEnvelope(t, b, n.cfg) > 0 {
					ztrans = reff + n.cfg.ZTransientOhm*n.cfg.TransientFactor(b.Cycles, clockGHz)
					break
				}
			}
		}
		drop := i*reff + shared + surge*ztrans
		out[t] = 100 * drop / n.cfg.VddV
	}
	// The sanitizer checks finiteness only: transient windows are open-loop
	// what-if traces (Fig. 14 regenerates the worst window under thinner
	// masks than the governor ever ran), so excursions past supply collapse
	// are a legitimate output here, unlike in the closed-loop paths.
	if invariant.Enabled {
		invariant.CheckFinite("pdn.TransientWindow pct", out)
	}
	return out, nil
}

// burstEnvelope returns the normalized current envelope of a burst at
// cycle t: linear rise, plateau, exponential decay.
func burstEnvelope(t int, b Burst, cfg Config) float64 {
	rel := t - b.StartCycle
	if rel < 0 {
		return 0
	}
	rise := cfg.BurstRiseCycles
	switch {
	case rel < rise:
		return float64(rel+1) / float64(rise)
	case rel < rise+b.Cycles:
		return 1
	default:
		decay := float64(rel-rise-b.Cycles) / float64(cfg.BurstDecayCycles)
		if decay > 20 {
			return 0
		}
		return math.Exp(-decay)
	}
}

// SampleSpec is the VoltSpot sampling methodology of Section 5: a number
// of equally spaced windows across the run, each WindowCycles long with
// the first WarmupCycles discarded as warm-up.
type SampleSpec struct {
	Samples      int
	WindowCycles int
	WarmupCycles int
}

// DefaultSampleSpec mirrors the paper: 200 samples × 2K cycles, 1K warm-up.
func DefaultSampleSpec() SampleSpec {
	return SampleSpec{Samples: 200, WindowCycles: 2000, WarmupCycles: 1000}
}

// Validate checks the specification.
func (s SampleSpec) Validate() error {
	if s.Samples <= 0 || s.WindowCycles <= 0 {
		return errors.New("pdn: sample spec needs positive counts")
	}
	if s.WarmupCycles < 0 || s.WarmupCycles >= s.WindowCycles {
		return errors.New("pdn: warm-up must be shorter than the window")
	}
	return nil
}

// MaxAfterWarmup reduces one sampled window to its post-warm-up maximum.
func (s SampleSpec) MaxAfterWarmup(window []float64) (float64, error) {
	if len(window) != s.WindowCycles {
		return 0, fmt.Errorf("pdn: window of %d cycles, spec says %d", len(window), s.WindowCycles)
	}
	m := math.Inf(-1)
	for _, v := range window[s.WarmupCycles:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}
