package power

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func newModel(t *testing.T) (*Model, *floorplan.Chip) {
	t.Helper()
	chip := floorplan.MustPOWER8()
	m, err := NewModel(chip)
	if err != nil {
		t.Fatal(err)
	}
	return m, chip
}

func uniform(chip *floorplan.Chip, v float64) []float64 {
	xs := make([]float64, len(chip.Blocks))
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func TestNewModelNilChip(t *testing.T) {
	if _, err := NewModel(nil); err == nil {
		t.Error("nil chip accepted")
	}
}

func TestStaticShareCalibration(t *testing.T) {
	// Section 5: static power is 30% of total chip consumption at 80°C.
	// At TDP-level operation (total = 150W) the static share must be the
	// calibrated 30%; at lower activity it may exceed it, which is why the
	// paper words the rule as a cap at TDP.
	m, chip := newModel(t)
	temps := uniform(chip, 80)

	leak, err := m.Leakage(temps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var totalLeak float64
	for _, l := range leak {
		totalLeak += l
	}
	if math.Abs(totalLeak-TDP*StaticShareAtRef) > 1e-6 {
		t.Errorf("chip leakage at 80°C = %vW, want %v", totalLeak, TDP*StaticShareAtRef)
	}

	// Find the activity level at which total power hits TDP, then check
	// the static share there is exactly the calibrated 30%.
	var peakDyn float64
	for i := range chip.Blocks {
		peakDyn += m.PeakDynamic(i)
	}
	act := (TDP - totalLeak) / peakDyn
	if act <= 0 || act > 1 {
		t.Fatalf("TDP activity point %v outside (0,1]: peak dynamic %vW", act, peakDyn)
	}
	share, err := m.StaticShare(uniform(chip, act), temps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share-StaticShareAtRef) > 1e-9 {
		t.Errorf("static share at TDP = %v, want %v", share, StaticShareAtRef)
	}
}

func TestLeakageTemperatureDependence(t *testing.T) {
	m, _ := newModel(t)
	l60 := m.LeakageAt(0, 60)
	l80 := m.LeakageAt(0, 80)
	l100 := m.LeakageAt(0, 100)
	if !(l60 < l80 && l80 < l100) {
		t.Errorf("leakage not increasing with T: %v %v %v", l60, l80, l100)
	}
	// Exponential model: doubling interval ln2/β ≈ 19.8°C.
	if ratio := l100 / l80; math.Abs(ratio-math.Exp(LeakageBeta*20)) > 1e-9 {
		t.Errorf("leakage ratio over 20°C = %v, want %v", ratio, math.Exp(LeakageBeta*20))
	}
}

func TestLogicLeaksMoreThanMemoryPerArea(t *testing.T) {
	m, chip := newModel(t)
	exu, _ := chip.BlockByName("core0/EXU")
	l3, _ := chip.BlockByName("l3bank0/L3")
	exuDensity := m.LeakageAt(exu.ID, 80) / exu.R.Area()
	l3Density := m.LeakageAt(l3.ID, 80) / l3.R.Area()
	if exuDensity <= l3Density {
		t.Errorf("logic leakage density %v not above memory %v", exuDensity, l3Density)
	}
}

func TestDynamicScalesLinearly(t *testing.T) {
	m, chip := newModel(t)
	half, err := m.Dynamic(uniform(chip, 0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := m.Dynamic(uniform(chip, 1.0), nil)
	for i := range half {
		if math.Abs(full[i]-2*half[i]) > 1e-12 {
			t.Fatalf("block %d: dynamic not linear (%v vs %v)", i, half[i], full[i])
		}
	}
	zero, _ := m.Dynamic(uniform(chip, 0), nil)
	for i, p := range zero {
		if p != 0 {
			t.Fatalf("block %d: zero activity dissipates %v", i, p)
		}
	}
}

func TestDynamicClampsActivity(t *testing.T) {
	m, chip := newModel(t)
	over := uniform(chip, 2.0)
	clamped, err := m.Dynamic(over, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := m.Dynamic(uniform(chip, 1.0), nil)
	for i := range clamped {
		if clamped[i] != full[i] {
			t.Fatalf("activity not clamped at block %d", i)
		}
	}
	neg, _ := m.Dynamic(uniform(chip, -1), nil)
	for i := range neg {
		if neg[i] != 0 {
			t.Fatalf("negative activity not clamped at block %d", i)
		}
	}
}

func TestDynamicReusesDst(t *testing.T) {
	m, chip := newModel(t)
	dst := make([]float64, len(chip.Blocks))
	got, err := m.Dynamic(uniform(chip, 0.3), dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Error("Dynamic did not reuse dst")
	}
	if _, err := m.Dynamic(uniform(chip, 0.3), make([]float64, 3)); err == nil {
		t.Error("short dst accepted")
	}
	if _, err := m.Dynamic([]float64{1, 2}, nil); err == nil {
		t.Error("short activity accepted")
	}
}

func TestTotalIsDynamicPlusLeakage(t *testing.T) {
	m, chip := newModel(t)
	act := uniform(chip, 0.4)
	temps := uniform(chip, 70)
	total, err := m.Total(act, temps, nil)
	if err != nil {
		t.Fatal(err)
	}
	dyn, _ := m.Dynamic(act, nil)
	leak, _ := m.Leakage(temps, nil)
	for i := range total {
		if math.Abs(total[i]-dyn[i]-leak[i]) > 1e-12 {
			t.Fatalf("block %d: total %v != dyn %v + leak %v", i, total[i], dyn[i], leak[i])
		}
	}
	if _, err := m.Total(act, []float64{1}, nil); err == nil {
		t.Error("short temperature vector accepted")
	}
}

func TestLeakageErrors(t *testing.T) {
	m, chip := newModel(t)
	if _, err := m.Leakage([]float64{1}, nil); err == nil {
		t.Error("short temperature vector accepted")
	}
	if _, err := m.Leakage(uniform(chip, 80), make([]float64, 2)); err == nil {
		t.Error("short dst accepted")
	}
}

func TestDomainDemand(t *testing.T) {
	m, chip := newModel(t)
	bp := make([]float64, len(chip.Blocks))
	for i := range bp {
		bp[i] = 1 // 1W per block
	}
	for _, d := range chip.Domains {
		got := m.DomainDemand(bp, &d)
		if math.Abs(got-float64(len(d.Blocks))) > 1e-12 {
			t.Errorf("domain %s demand = %v, want %d", d.Name, got, len(d.Blocks))
		}
	}
}

func TestWattsToAmps(t *testing.T) {
	if got := WattsToAmps(Vdd); math.Abs(got-1) > 1e-12 {
		t.Errorf("WattsToAmps(Vdd) = %v, want 1", got)
	}
	if WattsToAmps(-5) != 0 {
		t.Error("negative power must convert to zero current")
	}
}

func TestPeakChipPowerUnderTDPWithHeadroom(t *testing.T) {
	// Peak dynamic + leakage at 80°C must be in the same ballpark as the
	// 150W TDP: workloads never sustain activity 1.0 everywhere, so the
	// nameplate peak may exceed TDP slightly but not wildly.
	m, chip := newModel(t)
	var peak float64
	for i := range chip.Blocks {
		peak += m.PeakDynamic(i)
	}
	leak, _ := m.Leakage(uniform(chip, 80), nil)
	for _, l := range leak {
		peak += l
	}
	if peak < 120 || peak > 200 {
		t.Errorf("nameplate peak power = %vW, expected within [120, 200] around the 150W TDP", peak)
	}
}

func TestStaticShareZeroPower(t *testing.T) {
	m, chip := newModel(t)
	// At absurdly low temperature leakage underflows toward zero; the
	// share must stay defined.
	share, err := m.StaticShare(uniform(chip, 0), uniform(chip, -300))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(share) {
		t.Error("StaticShare returned NaN")
	}
}
