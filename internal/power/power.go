// Package power converts microarchitectural activity into per-block power,
// standing in for the McPAT (MR2) model of the paper's toolchain. Dynamic
// power scales linearly with each block's activity factor; static (leakage)
// power grows exponentially with temperature and is calibrated, as in
// Section 5, so that the chip-wide static share does not exceed 30% of
// total consumption at 80°C. Temperature feeds leakage and leakage feeds
// temperature, which is why the thermal solver runs this model in a closed
// feedback loop.
package power

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
)

// Vdd is the nominal supply voltage (Table 1).
const Vdd = 1.03

// TDP is the chip thermal design power in watts (Table 1).
const TDP = 150.0

// LeakageRefC is the reference temperature of the static power calibration.
const LeakageRefC = 80.0

// StaticShareAtRef is the calibrated chip-wide static share of total power
// at the reference temperature (Section 5: "does not exceed 30%").
const StaticShareAtRef = 0.30

// LeakageBeta is the exponential leakage-temperature sensitivity (1/K);
// 0.035/K roughly doubles leakage every 20°C, typical for 22nm.
const LeakageBeta = 0.035

// peakDynamicW is the peak dynamic power per unit class at activity 1.0,
// calibrated so that full activity across the chip approaches (but stays
// under) the 150W TDP once leakage is added.
var peakDynamicW = map[floorplan.UnitClass]float64{
	floorplan.UnitEXU: 4.0,
	floorplan.UnitLSU: 3.5,
	floorplan.UnitISU: 2.5,
	floorplan.UnitIFU: 2.0,
	floorplan.UnitL2:  1.5,
	floorplan.UnitL3:  1.2,
	floorplan.UnitNOC: 3.0,
	floorplan.UnitMC:  2.0,
}

// leakageWeight scales leakage density by block kind: logic leaks more per
// unit area than SRAM at iso-temperature in this calibration.
var leakageWeight = map[floorplan.BlockKind]float64{
	floorplan.Logic:        1.5,
	floorplan.Memory:       0.8,
	floorplan.Interconnect: 1.0,
	floorplan.IO:           0.7,
}

// Model is the calibrated activity→power model for one chip.
type Model struct {
	chip    *floorplan.Chip
	peakDyn []float64 // per block, W at activity 1
	leakRef []float64 // per block, W at LeakageRefC
}

// NewModel calibrates a power model for the chip.
func NewModel(chip *floorplan.Chip) (*Model, error) {
	if chip == nil {
		return nil, errors.New("power: nil chip")
	}
	m := &Model{
		chip:    chip,
		peakDyn: make([]float64, len(chip.Blocks)),
		leakRef: make([]float64, len(chip.Blocks)),
	}
	var weightedArea float64
	for _, b := range chip.Blocks {
		p, ok := peakDynamicW[b.Class]
		if !ok {
			return nil, fmt.Errorf("power: no dynamic budget for unit class %v", b.Class)
		}
		m.peakDyn[b.ID] = p
		weightedArea += leakageWeight[b.Kind] * b.R.Area()
	}
	// Distribute the calibrated chip-wide leakage across blocks by
	// kind-weighted area.
	totalLeakRef := TDP * StaticShareAtRef
	for _, b := range chip.Blocks {
		m.leakRef[b.ID] = totalLeakRef * leakageWeight[b.Kind] * b.R.Area() / weightedArea
	}
	return m, nil
}

// Chip returns the floorplan this model was calibrated for.
func (m *Model) Chip() *floorplan.Chip { return m.chip }

// PeakDynamic returns the per-block dynamic power at activity 1.0.
func (m *Model) PeakDynamic(block int) float64 { return m.peakDyn[block] }

// Dynamic fills dst with per-block dynamic power for the given activity
// frame. dst may be nil, in which case a fresh slice is allocated; both the
// activity slice and dst must cover every block.
func (m *Model) Dynamic(activity, dst []float64) ([]float64, error) {
	if len(activity) != len(m.peakDyn) {
		return nil, fmt.Errorf("power: activity for %d blocks, chip has %d", len(activity), len(m.peakDyn))
	}
	if dst == nil {
		dst = make([]float64, len(m.peakDyn))
	} else if len(dst) != len(m.peakDyn) {
		return nil, errors.New("power: dst length mismatch")
	}
	for i, a := range activity {
		if a < 0 {
			a = 0
		} else if a > 1 {
			a = 1
		}
		dst[i] = m.peakDyn[i] * a
	}
	return dst, nil
}

// LeakageAt returns one block's static power at the given temperature (°C).
func (m *Model) LeakageAt(block int, tempC float64) float64 {
	return m.leakRef[block] * math.Exp(LeakageBeta*(tempC-LeakageRefC))
}

// Leakage fills dst with per-block static power for the given per-block
// temperatures. dst may be nil.
func (m *Model) Leakage(tempC, dst []float64) ([]float64, error) {
	if len(tempC) != len(m.leakRef) {
		return nil, fmt.Errorf("power: temperatures for %d blocks, chip has %d", len(tempC), len(m.leakRef))
	}
	if dst == nil {
		dst = make([]float64, len(m.leakRef))
	} else if len(dst) != len(m.leakRef) {
		return nil, errors.New("power: dst length mismatch")
	}
	for i, t := range tempC {
		dst[i] = m.LeakageAt(i, t)
	}
	return dst, nil
}

// Total fills dst with per-block total (dynamic + static) power.
func (m *Model) Total(activity, tempC, dst []float64) ([]float64, error) {
	dyn, err := m.Dynamic(activity, dst)
	if err != nil {
		return nil, err
	}
	if len(tempC) != len(m.leakRef) {
		return nil, errors.New("power: temperature length mismatch")
	}
	for i := range dyn {
		dyn[i] += m.LeakageAt(i, tempC[i])
	}
	return dyn, nil
}

// DomainDemand sums the power demand of all blocks supplied by the domain.
func (m *Model) DomainDemand(blockPower []float64, d *floorplan.Domain) float64 {
	var sum float64
	for _, bid := range d.Blocks {
		sum += blockPower[bid]
	}
	return sum
}

// WattsToAmps converts a power demand at nominal Vdd into the load current
// the domain's regulators must supply.
func WattsToAmps(w float64) float64 {
	if w < 0 {
		return 0
	}
	return w / Vdd
}

// StaticShare returns the chip-wide static fraction of total power for the
// given activity and temperature vectors; the calibration tests use it to
// verify the 30%-at-80°C rule.
func (m *Model) StaticShare(activity, tempC []float64) (float64, error) {
	dyn, err := m.Dynamic(activity, nil)
	if err != nil {
		return 0, err
	}
	leak, err := m.Leakage(tempC, nil)
	if err != nil {
		return 0, err
	}
	var d, l float64
	for i := range dyn {
		d += dyn[i]
		l += leak[i]
	}
	if d+l <= 0 {
		return 0, nil
	}
	return l / (d + l), nil
}
