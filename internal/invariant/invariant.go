// Package invariant is the repository's physics-invariant sanitizer — a
// runtime counterpart, in the ASan/TSan mold, of the static passes tglint
// runs. The simulation loop couples activity → power → thermal → leakage →
// PDN → gating, so a single silent NaN, an aliased scratch buffer, or a
// non-conserved watt corrupts every downstream number without failing a
// test. The checks in this package pin the loop to the paper's physical
// contracts:
//
//   - energy conservation: per-block current maps, per-domain demand and
//     per-VR conversion loss must reconstruct from independent formulas,
//   - temperature bounds: ambient ≤ T ≤ the configured max junction, and
//     the explicit-Euler substep must satisfy its stability (CFL) bound,
//   - PDN droop bounds: IR-drop percentages stay finite, non-negative and
//     below full supply collapse,
//   - VR gating legality: a gated regulator neither carries current nor
//     dissipates loss, and active phase counts stay within the network's
//     limits,
//   - NaN/Inf sweeps over every state vector the Runner reuses.
//
// The whole package is compiled in only under the `tgsan` build tag:
//
//	go test -tags tgsan ./...
//
// Without the tag every check is an empty function the compiler inlines
// away and Enabled is a false constant, so guarded blocks are eliminated —
// production builds pay nothing (tgbench verifies this). Under the tag a
// violation is reported with its epoch, substep and offending block/VR
// index; the default handler panics, which makes the sanitizer the oracle
// for the `testing.F` fuzz targets (see docs/INVARIANTS.md for the full
// catalogue with paper references).
package invariant

import "fmt"

// Violation is one broken physical contract, located in simulated time.
type Violation struct {
	// Check names the contract, e.g. "energy-balance" or "temp-bounds".
	Check string
	// Epoch and Substep locate the violation in the run; -1 when the
	// check fired outside the Runner's epoch loop (package-level hooks).
	Epoch   int
	Substep int
	// Index is the offending block or regulator index, -1 when the
	// violation is not attributable to a single element.
	Index int
	// Detail is the human-readable specifics (values, bounds).
	Detail string
}

// Error renders the canonical one-line form.
func (v Violation) Error() string {
	loc := "outside epoch loop"
	if v.Epoch >= 0 {
		loc = fmt.Sprintf("epoch %d substep %d", v.Epoch, v.Substep)
	}
	at := ""
	if v.Index >= 0 {
		at = fmt.Sprintf(" index %d", v.Index)
	}
	return fmt.Sprintf("invariant: [%s] %s%s: %s", v.Check, loc, at, v.Detail)
}

// VRFaultClass tells the gating-legality checks how a regulator may
// legally deviate from the governor's decision under an active fault
// schedule (see docs/INVARIANTS.md, "Fault vocabulary"). On healthy runs
// every regulator is VRHealthy and the checks stay fully strict; the sim
// Runner maps the fault injector's per-unit status onto these classes only
// while a schedule is active.
type VRFaultClass int

const (
	// VRHealthy regulators obey the strict contract: gated ⇒ exactly zero
	// current and loss.
	VRHealthy VRFaultClass = iota
	// VRStuckOff regulators are out of service: they must never carry
	// current or dissipate loss, gated or not.
	VRStuckOff
	// VRStuckOn regulators legally carry current and dissipate loss while
	// "gated" — their power switch is wedged closed.
	VRStuckOn
	// VRDerated regulators are in service with a reduced per-phase IMax
	// share and/or elevated loss; the share checks scale accordingly.
	VRDerated
)

// Tolerances shared by the enabled checks and documented in
// docs/INVARIANTS.md. They are declared unconditionally so tests and docs
// can reference them in either build mode.
const (
	// RelTol is the relative tolerance for energy/current balance checks:
	// the compared quantities come from algebraically identical but
	// differently associated float expressions.
	RelTol = 1e-9
	// AbsTolW is the absolute floor (watts/amps) below which balance
	// differences are ignored.
	AbsTolW = 1e-12
	// TempSlackC is how far below ambient a node may transiently sit
	// before the bound counts as violated (explicit Euler rounding).
	TempSlackC = 0.05
	// StabilitySlack relaxes the h·maxRate ≤ 0.5 CFL comparison.
	StabilitySlack = 1e-9
	// DroopCollapsePct is the droop bound: an IR drop at or beyond 100%
	// of nominal Vdd means the supply collapsed.
	DroopCollapsePct = 100.0
)
