//go:build tgsan

package invariant

import (
	"math"
	"strings"
	"testing"
)

// collect installs a gathering handler for one test.
func collect(t *testing.T) *[]Violation {
	t.Helper()
	var got []Violation
	restore := SetHandler(func(v Violation) { got = append(got, v) })
	t.Cleanup(restore)
	t.Cleanup(ResetCtx)
	return &got
}

func TestEnabledFlag(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the tgsan build tag")
	}
}

func TestCtxLocatesViolations(t *testing.T) {
	got := collect(t)
	SetCtx(12, 5)
	CheckScalarFinite("x", math.NaN())
	ResetCtx()
	CheckScalarFinite("y", math.Inf(-1))

	if len(*got) != 2 {
		t.Fatalf("got %d violations, want 2", len(*got))
	}
	if v := (*got)[0]; v.Epoch != 12 || v.Substep != 5 {
		t.Fatalf("violation inside epoch loop located at (%d,%d), want (12,5)", v.Epoch, v.Substep)
	}
	if v := (*got)[1]; v.Epoch != -1 || v.Substep != -1 {
		t.Fatalf("violation after ResetCtx located at (%d,%d), want (-1,-1)", v.Epoch, v.Substep)
	}
}

func TestCheckFinite(t *testing.T) {
	got := collect(t)
	CheckFinite("p", []float64{0, 1.5, math.NaN(), 2, math.Inf(1)})
	if len(*got) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(*got), *got)
	}
	if (*got)[0].Index != 2 || (*got)[1].Index != 4 {
		t.Fatalf("violation indices %d,%d want 2,4", (*got)[0].Index, (*got)[1].Index)
	}
	*got = (*got)[:0]
	CheckFinite("p", []float64{0, 1, 2})
	if len(*got) != 0 {
		t.Fatalf("clean vector reported %v", *got)
	}
}

func TestCheckNonNegative(t *testing.T) {
	got := collect(t)
	CheckNonNegative("w", []float64{0, -1e-3, 2})
	if len(*got) != 1 || (*got)[0].Index != 1 {
		t.Fatalf("got %v, want one violation at index 1", *got)
	}
}

func TestCheckTempBounds(t *testing.T) {
	got := collect(t)
	// Within slack below ambient: fine. Far below or above max: violation.
	CheckTempBounds("T", []float64{35 - TempSlackC/2, 34, 151, math.NaN()}, 35, 150)
	if len(*got) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(*got), *got)
	}
	*got = (*got)[:0]
	// +Inf upper bound checks only the ambient floor.
	CheckTempBounds("T", []float64{5000}, 35, math.Inf(1))
	if len(*got) != 0 {
		t.Fatalf("upper bound +Inf still fired: %v", *got)
	}
}

func TestCheckStability(t *testing.T) {
	got := collect(t)
	CheckStability("euler", 1e-4, 4999) // h·rate ≈ 0.4999 < 0.5
	if len(*got) != 0 {
		t.Fatalf("stable step flagged: %v", *got)
	}
	CheckStability("euler", 1e-4, 5100) // 0.51 > 0.5
	CheckStability("euler", -1, 100)
	if len(*got) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(*got), *got)
	}
}

func TestCheckDroopPct(t *testing.T) {
	got := collect(t)
	CheckDroopPct("noise", 9.99)
	CheckDroopPct("noise", 42) // an emergency, but physically representable
	if len(*got) != 0 {
		t.Fatalf("legal droops flagged: %v", *got)
	}
	CheckDroopPct("noise", -0.1)
	CheckDroopPct("noise", 100)
	CheckDroopPct("noise", math.NaN())
	if len(*got) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(*got), *got)
	}
}

func TestCheckBalance(t *testing.T) {
	got := collect(t)
	CheckBalance("chip power", 100, 100*(1+RelTol/2))
	if len(*got) != 0 {
		t.Fatalf("within-tolerance balance flagged: %v", *got)
	}
	CheckBalance("chip power", 100, 101)
	if len(*got) != 1 {
		t.Fatalf("1%% imbalance not flagged")
	}
	if c := (*got)[0].Check; c != "energy-balance" {
		t.Fatalf("check name %q, want energy-balance", c)
	}
}

func TestCheckCount(t *testing.T) {
	got := collect(t)
	CheckCount("phases", 9, 1, 9)
	CheckCount("phases", 1, 1, 9)
	if len(*got) != 0 {
		t.Fatalf("legal counts flagged: %v", *got)
	}
	CheckCount("phases", 0, 1, 9)
	CheckCount("phases", 10, 1, 9)
	if len(*got) != 2 {
		t.Fatalf("got %d violations, want 2", len(*got))
	}
}

func TestDefaultHandlerPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("default handler did not panic")
		}
		v, ok := r.(Violation)
		if !ok {
			t.Fatalf("panic value %T, want Violation", r)
		}
		if !strings.Contains(v.Error(), "finite") {
			t.Fatalf("unexpected violation: %v", v)
		}
	}()
	CheckScalarFinite("x", math.NaN())
}
