//go:build tgsan

package invariant

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Enabled reports that the tgsan build tag compiled the checks in.
const Enabled = true

// ctxWord packs (epoch, substep) into one atomic word so SetCtx costs a
// single store in the substep loop and concurrent runners (the experiments
// sweep) never tear a read. With several runners in flight the ambient
// context is best-effort diagnostic information, not a synchronization
// point.
var ctxWord atomic.Uint64

const ctxUnset = math.MaxUint64

func init() { ctxWord.Store(ctxUnset) }

// SetCtx records the Runner's current (epoch, substep) so package-level
// hooks (thermal, pdn, vr) can locate their violations in simulated time.
func SetCtx(epoch, substep int) {
	ctxWord.Store(uint64(uint32(epoch))<<32 | uint64(uint32(substep)))
}

// ResetCtx marks the ambient context unknown (outside any epoch loop).
func ResetCtx() { ctxWord.Store(ctxUnset) }

func currentCtx() (epoch, substep int) {
	w := ctxWord.Load()
	if w == ctxUnset {
		return -1, -1
	}
	return int(int32(w >> 32)), int(int32(w))
}

var handlerMu sync.RWMutex
var handler func(Violation) = func(v Violation) { panic(v) }

// SetHandler replaces the violation handler (default: panic) and returns a
// function restoring the previous one. Tests use it to collect violations;
// the fuzz targets keep the default so violations surface as crashers.
func SetHandler(h func(Violation)) (restore func()) {
	handlerMu.Lock()
	prev := handler
	handler = h
	handlerMu.Unlock()
	return func() {
		handlerMu.Lock()
		handler = prev
		handlerMu.Unlock()
	}
}

func report(check string, index int, format string, args ...any) {
	epoch, substep := currentCtx()
	v := Violation{
		Check:   check,
		Epoch:   epoch,
		Substep: substep,
		Index:   index,
		Detail:  fmt.Sprintf(format, args...),
	}
	handlerMu.RLock()
	h := handler
	handlerMu.RUnlock()
	h(v)
}

// Reportf lets composite checkers (the sim Runner's gating and energy
// sweeps) report a violation of the named contract directly.
func Reportf(check string, index int, format string, args ...any) {
	report(check, index, format, args...)
}

// CheckFinite sweeps a state vector for NaN/Inf.
func CheckFinite(what string, vs []float64) {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			report("finite", i, "%s[%d] = %v", what, i, v)
		}
	}
}

// CheckScalarFinite checks one scalar for NaN/Inf.
func CheckScalarFinite(what string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		report("finite", -1, "%s = %v", what, v)
	}
}

// CheckNonNegative sweeps a vector for negative entries (powers, currents
// and losses are magnitudes; a negative watt is a sign error upstream).
func CheckNonNegative(what string, vs []float64) {
	for i, v := range vs {
		if v < 0 {
			report("non-negative", i, "%s[%d] = %v < 0", what, i, v)
		}
	}
}

// CheckTempBounds enforces ambient ≤ T ≤ maxC on a temperature vector.
// Pass maxC = +Inf to check only the ambient floor (package-level hooks
// that do not know the configured junction limit).
func CheckTempBounds(what string, temps []float64, ambientC, maxC float64) {
	lo := ambientC - TempSlackC
	for i, t := range temps {
		if math.IsNaN(t) || t < lo || t > maxC {
			report("temp-bounds", i, "%s[%d] = %v°C outside [%v, %v]°C",
				what, i, t, ambientC, maxC)
		}
	}
}

// CheckStability enforces the explicit-Euler stability (CFL) condition:
// the integration substep times the fastest node rate must not exceed 1/2.
func CheckStability(what string, stepS, maxRatePerS float64) {
	if stepS <= 0 || math.IsNaN(stepS) {
		report("cfl-stability", -1, "%s: non-positive substep %v s", what, stepS)
		return
	}
	if r := stepS * maxRatePerS; r > 0.5+StabilitySlack {
		report("cfl-stability", -1, "%s: substep %v s × max rate %v /s = %v exceeds the 0.5 Euler stability bound",
			what, stepS, maxRatePerS, r)
	}
}

// CheckDroopPct enforces the PDN droop bounds on one noise figure: finite,
// non-negative, and short of full supply collapse.
func CheckDroopPct(what string, pct float64) {
	if math.IsNaN(pct) || pct < 0 || pct >= DroopCollapsePct {
		report("droop-bounds", -1, "%s: droop %v%% of Vdd outside [0, %v)", what, pct, DroopCollapsePct)
	}
}

// CheckBalance compares two watt (or amp) figures that must agree up to
// float association: |got-want| ≤ AbsTolW + RelTol·max(|got|,|want|).
func CheckBalance(what string, got, want float64) {
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	if math.IsNaN(diff) || diff > AbsTolW+RelTol*scale {
		report("energy-balance", -1, "%s: got %v, want %v (diff %v)", what, got, want, diff)
	}
}

// CheckCount enforces an integer range, e.g. active phase counts within
// [1, N] for a vr.Network.
func CheckCount(what string, count, lo, hi int) {
	if count < lo || count > hi {
		report("count-bounds", -1, "%s: count %d outside [%d, %d]", what, count, lo, hi)
	}
}

// CheckGatedVR enforces the gated-regulator contract on one regulator the
// applied mask turns off, honoring its fault class: healthy, derated and
// stuck-off regulators must be zeroed exactly; a stuck-on regulator's power
// switch is wedged closed, so it legally carries current and dissipates
// loss while "gated". On healthy runs every caller passes VRHealthy and the
// check is fully strict.
func CheckGatedVR(what string, rid int, currentA, powerW float64, class VRFaultClass) {
	if class == VRStuckOn {
		return
	}
	//lint:ignore floatcheck a gated regulator is zeroed exactly, not approximately
	if currentA != 0 || powerW != 0 {
		report("vr-gating", rid, "%s: gated regulator carries %v A and dissipates %v W",
			what, currentA, powerW)
	}
}

// CheckPhaseShare enforces the per-phase current limit on one domain's
// equal current share: share ≤ IMax·derateFrac, where derateFrac < 1
// models an active phase-loss fault (VRDerated class). atCapacity exempts
// the check — when every in-service regulator is already on, overload
// legalisation deliberately exceeds the limit and the runner reports a
// demand violation through its own counter instead.
func CheckPhaseShare(what string, index int, shareA, imaxA, derateFrac float64, atCapacity bool) {
	if atCapacity {
		return
	}
	if shareA > imaxA*derateFrac*(1+RelTol) {
		report("vr-gating", index, "%s: per-phase share %v A exceeds IMax %v A × derate %v",
			what, shareA, imaxA, derateFrac)
	}
}
