//go:build !tgsan

package invariant

// Enabled reports that the sanitizer is compiled out: every function below
// is an empty shell the compiler inlines to nothing, and `if
// invariant.Enabled { ... }` blocks are dead-code eliminated.
const Enabled = false

// SetCtx is a no-op without the tgsan build tag.
func SetCtx(epoch, substep int) {}

// ResetCtx is a no-op without the tgsan build tag.
func ResetCtx() {}

// SetHandler is a no-op without the tgsan build tag; the returned restore
// function does nothing.
func SetHandler(h func(Violation)) (restore func()) { return func() {} }

// Reportf is a no-op without the tgsan build tag.
func Reportf(check string, index int, format string, args ...any) {}

// CheckFinite is a no-op without the tgsan build tag.
func CheckFinite(what string, vs []float64) {}

// CheckScalarFinite is a no-op without the tgsan build tag.
func CheckScalarFinite(what string, v float64) {}

// CheckNonNegative is a no-op without the tgsan build tag.
func CheckNonNegative(what string, vs []float64) {}

// CheckTempBounds is a no-op without the tgsan build tag.
func CheckTempBounds(what string, temps []float64, ambientC, maxC float64) {}

// CheckStability is a no-op without the tgsan build tag.
func CheckStability(what string, stepS, maxRatePerS float64) {}

// CheckDroopPct is a no-op without the tgsan build tag.
func CheckDroopPct(what string, pct float64) {}

// CheckBalance is a no-op without the tgsan build tag.
func CheckBalance(what string, got, want float64) {}

// CheckCount is a no-op without the tgsan build tag.
func CheckCount(what string, count, lo, hi int) {}

// CheckGatedVR is a no-op without the tgsan build tag.
func CheckGatedVR(what string, rid int, currentA, powerW float64, class VRFaultClass) {}

// CheckPhaseShare is a no-op without the tgsan build tag.
func CheckPhaseShare(what string, index int, shareA, imaxA, derateFrac float64, atCapacity bool) {}
