//go:build !tgsan

package invariant

import (
	"math"
	"testing"
)

// Without the tgsan tag the sanitizer must be fully compiled out: Enabled
// is false and every check swallows even blatant violations.
func TestStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the tgsan build tag")
	}
	fired := false
	restore := SetHandler(func(Violation) { fired = true })
	defer restore()

	SetCtx(3, 7)
	CheckFinite("x", []float64{math.NaN(), math.Inf(1)})
	CheckScalarFinite("x", math.NaN())
	CheckNonNegative("x", []float64{-1})
	CheckTempBounds("t", []float64{-400}, 35, 150)
	CheckStability("s", 1, 100)
	CheckDroopPct("d", 250)
	CheckBalance("e", 1, 2)
	CheckCount("c", 99, 1, 9)
	Reportf("manual", 0, "boom")
	ResetCtx()

	if fired {
		t.Fatal("stub checks must never invoke the handler")
	}
}

// Violation formatting is shared between build modes.
func TestViolationError(t *testing.T) {
	v := Violation{Check: "temp-bounds", Epoch: 4, Substep: 2, Index: 17, Detail: "T = 200°C"}
	want := "invariant: [temp-bounds] epoch 4 substep 2 index 17: T = 200°C"
	if got := v.Error(); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	v = Violation{Check: "finite", Epoch: -1, Substep: -1, Index: -1, Detail: "x = NaN"}
	want = "invariant: [finite] outside epoch loop: x = NaN"
	if got := v.Error(); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}
