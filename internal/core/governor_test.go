package core

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/vr"
)

// testRig bundles the pieces a governor needs.
type testRig struct {
	chip     *floorplan.Chip
	networks []*vr.Network
	grid     *pdn.Network
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	chip := floorplan.MustPOWER8()
	networks := make([]*vr.Network, len(chip.Domains))
	for i, d := range chip.Domains {
		nw, err := vr.NewNetwork(vr.FIVR(), len(d.Regulators))
		if err != nil {
			t.Fatal(err)
		}
		networks[i] = nw
	}
	grid, err := pdn.NewNetwork(chip, pdn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{chip: chip, networks: networks, grid: grid}
}

func (r *testRig) governor(t *testing.T, policy PolicyKind) *Governor {
	t.Helper()
	g, err := NewGovernor(r.chip, r.networks, r.grid, DefaultConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// flatInputs builds a full set of inputs with uniform temperatures and a
// constant demand per domain.
func (r *testRig) flatInputs(demandA float64) *Inputs {
	nD := len(r.chip.Domains)
	nR := len(r.chip.Regulators)
	nB := len(r.chip.Blocks)
	in := &Inputs{
		PrevDomainCurrent:   make([]float64, nD),
		SensorVRTemps:       make([]float64, nR),
		VRTemps:             make([]float64, nR),
		FutureDomainCurrent: make([]float64, nD),
		FutureBlockCurrent:  make([]float64, nB),
	}
	for d := 0; d < nD; d++ {
		in.PrevDomainCurrent[d] = demandA
		in.FutureDomainCurrent[d] = demandA
	}
	for i := 0; i < nR; i++ {
		in.SensorVRTemps[i] = 60
		in.VRTemps[i] = 60
	}
	for b := 0; b < nB; b++ {
		in.FutureBlockCurrent[b] = demandA / 5
	}
	in.PredictVRTempOn = func(vrID int, plossW float64) float64 { return 60 + plossW*30 }
	in.DomainEmergency = func(domain, count int, ranking []int) bool { return false }
	return in
}

func TestNewGovernorValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewGovernor(nil, r.networks, r.grid, DefaultConfig(AllOn)); err == nil {
		t.Error("nil chip accepted")
	}
	if _, err := NewGovernor(r.chip, r.networks[:3], r.grid, DefaultConfig(AllOn)); err == nil {
		t.Error("short network list accepted")
	}
	if _, err := NewGovernor(r.chip, r.networks, nil, DefaultConfig(OracV)); err == nil {
		t.Error("OracV without a PDN accepted")
	}
	if _, err := NewGovernor(r.chip, r.networks, nil, DefaultConfig(OracT)); err != nil {
		t.Errorf("OracT without PDN rejected: %v", err)
	}
	bad := DefaultConfig(AllOn)
	bad.EpochMS = 0
	if _, err := NewGovernor(r.chip, r.networks, r.grid, bad); err == nil {
		t.Error("invalid config accepted")
	}
	nets := append([]*vr.Network(nil), r.networks...)
	nets[2] = nil
	if _, err := NewGovernor(r.chip, nets, r.grid, DefaultConfig(AllOn)); err == nil {
		t.Error("nil network accepted")
	}
}

func TestConfigValidateCases(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Policy = NumPolicies },
		func(c *Config) { c.EpochMS = -1 },
		func(c *Config) { c.SensorDelayMS = -0.1 },
		func(c *Config) { c.SensorDelayMS = c.EpochMS + 1 },
		func(c *Config) { c.WMAWindow = 0 },
		func(c *Config) { c.EmergencyAccuracy = 1.5 },
		func(c *Config) { c.EmergencyFalseRate = -0.1 },
	}
	for i, mut := range muts {
		c := DefaultConfig(PracVT)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAllOnAndOffChipDecisions(t *testing.T) {
	r := newRig(t)
	in := r.flatInputs(5)

	dec, err := r.governor(t, AllOn).Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.ActiveCount(); got != floorplan.TotalVRs {
		t.Errorf("all-on activates %d, want %d", got, floorplan.TotalVRs)
	}

	dec, err = r.governor(t, OffChip).Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.ActiveCount(); got != 0 {
		t.Errorf("off-chip activates %d, want 0", got)
	}
}

func TestNOnTracksDemandAcrossPolicies(t *testing.T) {
	r := newRig(t)
	for _, p := range []PolicyKind{Naive, OracT, OracV} {
		g := r.governor(t, p)
		lo, err := g.Decide(r.flatInputs(1.5))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		// Decide reuses its Decision across calls, so copy the count
		// before deciding again on the same governor.
		loCount := lo.Domains[0].Count
		hi, err := g.Decide(r.flatInputs(12.0))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if loCount >= hi.Domains[0].Count {
			t.Errorf("%v: count did not grow with demand (%d vs %d)",
				p, loCount, hi.Domains[0].Count)
		}
		if loCount != 1 {
			t.Errorf("%v: at 1.5A expected n_on = 1, got %d", p, loCount)
		}
	}
}

func TestNaivePicksCoolest(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, Naive)
	in := r.flatInputs(3.0) // n_on = 2 per core domain
	// Make regulators 0 and 5 of domain 0 the coolest.
	d0 := r.chip.Domains[0]
	for i, rid := range d0.Regulators {
		in.VRTemps[rid] = 70 + float64(i)
	}
	in.VRTemps[d0.Regulators[5]] = 50
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	rank := dec.Domains[0].Ranking
	if rank[0] != 5 || rank[1] != 0 {
		t.Errorf("naive ranking starts %v, want [5 0 ...]", rank[:2])
	}
	if dec.Domains[0].Count != 2 {
		t.Errorf("count = %d, want 2", dec.Domains[0].Count)
	}
}

func TestOracTPicksCoolestToBe(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, OracT)
	in := r.flatInputs(3.0)
	d0 := r.chip.Domains[0]
	// Regulator 3 is cool now but will be the hottest if kept on;
	// regulator 7 is warm now but will stay coolest.
	in.PredictVRTempOn = func(vrID int, plossW float64) float64 {
		for i, rid := range d0.Regulators {
			if rid == vrID {
				if i == 3 {
					return 90
				}
				if i == 7 {
					return 55
				}
				return 70
			}
		}
		return 70
	}
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	rank := dec.Domains[0].Ranking
	if rank[0] != 7 {
		t.Errorf("OracT ranking starts with %d, want 7 (coolest-to-be)", rank[0])
	}
	if rank[len(rank)-1] != 3 {
		t.Errorf("OracT ranking ends with %d, want 3 (hottest-to-be)", rank[len(rank)-1])
	}
}

func TestOracVPrefersLogicSideRegulators(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, OracV)
	// Current concentrated on logic blocks.
	in := r.flatInputs(6.0)
	for b := range in.FutureBlockCurrent {
		if r.chip.Blocks[b].Kind == floorplan.Logic {
			in.FutureBlockCurrent[b] = 3
		} else {
			in.FutureBlockCurrent[b] = 0.3
		}
	}
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	logic, _, err := r.chip.LogicSideRegulators(0)
	if err != nil {
		t.Fatal(err)
	}
	logicSet := map[int]bool{}
	d0 := r.chip.Domains[0]
	for _, rid := range logic {
		for i, r2 := range d0.Regulators {
			if r2 == rid {
				logicSet[i] = true
			}
		}
	}
	// The top-ranked (kept-on) regulators must be logic-side.
	for k := 0; k < dec.Domains[0].Count && k < 4; k++ {
		if !logicSet[dec.Domains[0].Ranking[k]] {
			t.Errorf("OracV rank %d is regulator %d, not logic-side", k, dec.Domains[0].Ranking[k])
		}
	}
}

func TestOracVTEmergencySwitchesAllOn(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, OracVT)
	in := r.flatInputs(3.0)
	in.DomainEmergency = func(domain, count int, ranking []int) bool { return domain == 2 }
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Domains[2].EmergencyOverride {
		t.Error("domain 2 emergency not flagged")
	}
	if dec.Domains[2].Count != len(r.chip.Domains[2].Regulators) {
		t.Errorf("domain 2 count = %d, want all on", dec.Domains[2].Count)
	}
	if dec.Domains[0].EmergencyOverride || dec.Domains[0].Count == len(r.chip.Domains[0].Regulators) {
		t.Error("non-emergency domain was switched to all-on")
	}
}

func TestPracTRequiresTheta(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	if _, err := g.Decide(r.flatInputs(3)); err == nil {
		t.Error("PracT decided without a theta model")
	}
}

func TestPracTUsesThetaAndSensors(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	theta := ThetaModel{Theta: make([]float64, len(r.chip.Regulators))}
	for i := range theta.Theta {
		theta.Theta[i] = 30
	}
	if err := g.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	in := r.flatInputs(3.0)
	d0 := r.chip.Domains[0]
	// Sensor says regulator 4 is cold.
	in.SensorVRTemps[d0.Regulators[4]] = 40
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Domains[0].Ranking[0] != 4 {
		t.Errorf("PracT top choice = %d, want 4 (coldest sensor)", dec.Domains[0].Ranking[0])
	}
}

func TestSetThetaValidation(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	if err := g.SetTheta(ThetaModel{Theta: []float64{1, 2}}); err == nil {
		t.Error("short theta accepted")
	}
}

func TestPracVTStochasticDetector(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig(PracVT)
	cfg.EmergencyFalseRate = 0
	g, err := NewGovernor(r.chip, r.networks, r.grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	theta := ThetaModel{Theta: make([]float64, len(r.chip.Regulators))}
	if err := g.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	in := r.flatInputs(3.0)
	in.DomainEmergency = func(domain, count int, ranking []int) bool { return true }
	hits := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		dec, err := g.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Domains[0].EmergencyOverride {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-cfg.EmergencyAccuracy) > 0.06 {
		t.Errorf("detector hit rate = %v, want ≈%v", rate, cfg.EmergencyAccuracy)
	}
}

func TestObserveFeedsWMA(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	theta := ThetaModel{Theta: make([]float64, len(r.chip.Regulators))}
	_ = g.SetTheta(theta)

	dc := make([]float64, len(r.chip.Domains))
	loss := make([]float64, len(r.chip.Regulators))
	for i := range dc {
		dc[i] = 6.0 // steady 6A demand
	}
	for k := 0; k < 5; k++ {
		if err := g.Observe(dc, loss); err != nil {
			t.Fatal(err)
		}
	}
	in := r.flatInputs(0) // history says 6A even though inputs carry 0
	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	want := r.networks[0].NOn(6.0)
	if dec.Domains[0].Count != want {
		t.Errorf("PracT count = %d, want %d from WMA history", dec.Domains[0].Count, want)
	}
}

func TestObserveValidation(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	if err := g.Observe([]float64{1}, make([]float64, len(r.chip.Regulators))); err == nil {
		t.Error("short domain currents accepted")
	}
	if err := g.Observe(make([]float64, len(r.chip.Domains)), []float64{1}); err == nil {
		t.Error("short VR losses accepted")
	}
}

func TestDecideNilInputs(t *testing.T) {
	r := newRig(t)
	if _, err := r.governor(t, AllOn).Decide(nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestRankingsArePermutations(t *testing.T) {
	r := newRig(t)
	for _, p := range []PolicyKind{Naive, OracT, OracV} {
		dec, err := r.governor(t, p).Decide(r.flatInputs(7))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for d, dd := range dec.Domains {
			n := len(r.chip.Domains[d].Regulators)
			if len(dd.Ranking) != n {
				t.Fatalf("%v domain %d: ranking of %d for %d regulators", p, d, len(dd.Ranking), n)
			}
			seen := make([]bool, n)
			for _, idx := range dd.Ranking {
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("%v domain %d: ranking %v is not a permutation", p, d, dd.Ranking)
				}
				seen[idx] = true
			}
			if dd.Count < 1 || dd.Count > n {
				t.Fatalf("%v domain %d: count %d outside [1,%d]", p, d, dd.Count, n)
			}
		}
	}
}

func TestMissingOracleInputsRejected(t *testing.T) {
	r := newRig(t)
	in := r.flatInputs(3)
	in.PredictVRTempOn = nil
	if _, err := r.governor(t, OracT).Decide(in); err == nil {
		t.Error("OracT without PredictVRTempOn accepted")
	}
	in = r.flatInputs(3)
	in.FutureBlockCurrent = nil
	if _, err := r.governor(t, OracV).Decide(in); err == nil {
		t.Error("OracV without future block currents accepted")
	}
	in = r.flatInputs(3)
	in.DomainEmergency = nil
	if _, err := r.governor(t, OracVT).Decide(in); err == nil {
		t.Error("OracVT without DomainEmergency accepted")
	}
	in = r.flatInputs(3)
	in.VRTemps = nil
	if _, err := r.governor(t, Naive).Decide(in); err == nil {
		t.Error("Naive without instantaneous temps accepted")
	}
	in = r.flatInputs(3)
	in.FutureDomainCurrent = nil
	if _, err := r.governor(t, OracT).Decide(in); err == nil {
		t.Error("OracT without future demand accepted")
	}
	in = r.flatInputs(3)
	in.PrevDomainCurrent = nil
	if _, err := r.governor(t, Naive).Decide(in); err == nil {
		t.Error("Naive without previous demand accepted")
	}
}

func TestGovernorAccessors(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracT)
	if g.Config().Policy != PracT {
		t.Errorf("Config policy %v", g.Config().Policy)
	}
	if len(g.Theta().Theta) != 0 {
		t.Error("fresh governor has a theta model")
	}
	theta := ThetaModel{Theta: make([]float64, len(r.chip.Regulators))}
	if err := g.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	if len(g.Theta().Theta) != len(r.chip.Regulators) {
		t.Error("Theta not round-tripped")
	}
}

func TestCustomPolicyRankingValidated(t *testing.T) {
	r := newRig(t)
	mkGov := func(rank func(domain int, in *Inputs, demandA float64, count int) []int) *Governor {
		cfg := DefaultConfig(Custom)
		cfg.CustomRank = rank
		g, err := NewGovernor(r.chip, r.networks, r.grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Short ranking rejected.
	g := mkGov(func(domain int, in *Inputs, demandA float64, count int) []int {
		return []int{0, 1}
	})
	if _, err := g.Decide(r.flatInputs(3)); err == nil {
		t.Error("short custom ranking accepted")
	}
	// Duplicate entries rejected.
	g = mkGov(func(domain int, in *Inputs, demandA float64, count int) []int {
		n := len(r.chip.Domains[domain].Regulators)
		out := make([]int, n)
		return out // all zeros
	})
	if _, err := g.Decide(r.flatInputs(3)); err == nil {
		t.Error("duplicate custom ranking accepted")
	}
	// Out-of-range entries rejected.
	g = mkGov(func(domain int, in *Inputs, demandA float64, count int) []int {
		n := len(r.chip.Domains[domain].Regulators)
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		out[0] = 99
		return out
	})
	if _, err := g.Decide(r.flatInputs(3)); err == nil {
		t.Error("out-of-range custom ranking accepted")
	}
	// A valid ranking works.
	g = mkGov(func(domain int, in *Inputs, demandA float64, count int) []int {
		n := len(r.chip.Domains[domain].Regulators)
		out := make([]int, n)
		for i := range out {
			out[i] = n - 1 - i
		}
		return out
	})
	dec, err := g.Decide(r.flatInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.chip.Domains[0].Regulators)
	if dec.Domains[0].Ranking[0] != n-1 {
		t.Errorf("custom ranking not honoured: %v", dec.Domains[0].Ranking)
	}
	// Custom without CustomRank is rejected at construction.
	cfg := DefaultConfig(Custom)
	if _, err := NewGovernor(r.chip, r.networks, r.grid, cfg); err == nil {
		t.Error("Custom policy without CustomRank accepted")
	}
}
