package core

import (
	"testing"
)

func TestDetectorKindString(t *testing.T) {
	if DetectStochastic.String() != "stochastic" || DetectSignature.String() != "signature" {
		t.Error("detector kind strings wrong")
	}
	if DetectorKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestPredictorStatsMath(t *testing.T) {
	s := PredictorStats{TruePositive: 8, FalsePositive: 2, TrueNegative: 85, FalseNegative: 5, Suppressed: 13}
	if got := s.Recall(); got != 8.0/13 {
		t.Errorf("recall %v", got)
	}
	if got := s.EffectiveRecall(); got != 21.0/26 {
		t.Errorf("effective recall %v", got)
	}
	if got := s.Precision(); got != 0.8 {
		t.Errorf("precision %v", got)
	}
	if got := s.Accuracy(); got != 93.0/100 {
		t.Errorf("accuracy %v", got)
	}
	zero := PredictorStats{}
	if zero.Recall() != 0 || zero.Precision() != 0 || zero.Accuracy() != 0 || zero.EffectiveRecall() != 0 {
		t.Error("zero stats not zero")
	}
}

func TestSignatureFields(t *testing.T) {
	base := emergencySignature(3, 5.2, false, false)
	if emergencySignature(3, 5.2, false, true) == base {
		t.Error("last-emergency bit not encoded")
	}
	if emergencySignature(3, 5.2, true, false) == base {
		t.Error("trend bit not encoded")
	}
	if emergencySignature(4, 5.2, false, false) == base {
		t.Error("domain not encoded")
	}
	if emergencySignature(3, 9.7, false, false) == base {
		t.Error("demand level not encoded")
	}
	// Demand saturates at the top bucket rather than aliasing.
	if emergencySignature(3, 300, false, false) != emergencySignature(3, 16, false, false) {
		t.Error("demand quantisation does not saturate")
	}
}

func TestSignaturePredictorLearns(t *testing.T) {
	p := newSignaturePredictor(2)
	sig := emergencySignature(0, 4, false, true)

	// Before any learning the predictor stays quiet.
	if p.predict(0, sig) {
		t.Error("untrained predictor alerted")
	}
	p.learn(0, true, false)
	// One observation is not enough for a 2-bit counter to alert.
	if p.predict(0, sig) {
		t.Error("predictor alerted after a single observation")
	}
	p.learn(0, true, false)
	if !p.predict(0, sig) {
		t.Error("predictor silent after two confirming observations")
	}
	p.learn(0, true, false)

	// Counter-evidence eventually silences it again.
	for i := 0; i < 4; i++ {
		p.predict(0, sig)
		p.learn(0, false, false)
	}
	if p.predict(0, sig) {
		t.Error("predictor still alerting after sustained counter-evidence")
	}
	p.learn(0, false, false)

	st := p.stats
	if st.TruePositive == 0 || st.FalsePositive == 0 || st.FalseNegative == 0 || st.TrueNegative == 0 {
		t.Errorf("confusion matrix incomplete: %+v", st)
	}
}

func TestSignaturePredictorLearnsOnlyPending(t *testing.T) {
	p := newSignaturePredictor(1)
	// learn without a pending prediction is a no-op.
	p.learn(0, true, false)
	if p.stats != (PredictorStats{}) {
		t.Errorf("stats moved without a prediction: %+v", p.stats)
	}
}

func TestGovernorSignatureDetectorEndToEnd(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig(PracVT)
	cfg.Detector = DetectSignature
	g, err := NewGovernor(r.chip, r.networks, r.grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	theta := ThetaModel{Theta: make([]float64, len(r.chip.Regulators))}
	if err := g.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	in := r.flatInputs(3.0)
	// Simulate recurring emergencies on domain 0: demand level constant,
	// emergencies persist — after a couple of epochs the detector must
	// pre-emptively switch domain 0 to all-on.
	emer := make([]bool, len(r.chip.Domains))
	alerted := false
	for epoch := 0; epoch < 10; epoch++ {
		in.Epoch = epoch
		dec, err := g.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if epoch >= 4 && dec.Domains[0].EmergencyOverride {
			alerted = true
		}
		emer[0] = true
		if err := g.ObserveEmergencies(emer); err != nil {
			t.Fatal(err)
		}
	}
	if !alerted {
		t.Error("signature detector never learned the recurring emergency")
	}
	stats := g.DetectorStats()
	if stats.TruePositive == 0 {
		t.Errorf("no true positives recorded: %+v", stats)
	}
	if err := g.ObserveEmergencies(emer[:3]); err == nil {
		t.Error("short emergency vector accepted")
	}
}
