package core

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/stats"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Config parameterises the governor.
type Config struct {
	// Policy selects the gating policy.
	Policy PolicyKind
	// EpochMS is the gating decision interval (1ms in the paper).
	EpochMS float64
	// SensorDelayMS is the thermal sensor staleness PracT works against
	// (100µs in the paper, from 10K-readings/s sensors plus firmware
	// overhead).
	SensorDelayMS float64
	// WMAWindow is the demand forecaster window (3 decision points).
	WMAWindow int
	// EmergencyAccuracy is PracVT's voltage-emergency detector hit rate
	// (>90% per Reddi et al.).
	EmergencyAccuracy float64
	// EmergencyFalseRate is the detector's false-alarm probability per
	// domain per decision.
	EmergencyFalseRate float64
	// Detector selects PracVT's emergency anticipation mechanism: the
	// paper's abstract >90%-accuracy detector (stochastic over ground
	// truth) or the concrete Reddi-style signature predictor that learns
	// from observable state only.
	Detector DetectorKind
	// TrendGain is PracT's sensor-trend compensation: the anticipated
	// regulator temperature of Eqn. 2 is extrapolated by TrendGain x the
	// temperature change observed between the last two sensor readings.
	// A regulator whose thermal time constant is comparable to the
	// decision period is still mid-transient at each decision point; the
	// trend term lets the practical policy anticipate the residual rise
	// the way the oracle's exact predictor does, using nothing but sensor
	// history. For a first-order node sampled at the decision period T
	// with time constant tau, the residual rise is exp(-T/tau) times the
	// observed rise; 0.45 matches the calibrated tau of 1.2ms.
	TrendGain float64
	// ThermalEmergencyC is the fail-safe limit: when any of a domain's
	// regulator sensors reads at or above this temperature, the domain is
	// forced to all-on regardless of policy — spreading the load over every
	// phase is the safe state when the thermal picture is alarming (or, with
	// faulted sensors, no longer trustworthy). Zero disables the fail-safe.
	// The default of 115°C sits well above any healthy operating point and
	// below the 150°C junction limit, so it only trips under genuine (or
	// injected) thermal emergencies.
	ThermalEmergencyC float64
	// Seed drives the stochastic emergency detector.
	Seed uint64
	// CustomRank supplies the regulator preference order for the Custom
	// policy: given a domain, the decision inputs and the domain's
	// anticipated demand and active count, it returns the domain's
	// regulator local indices most-preferred first. Required when Policy
	// is Custom; ignored otherwise.
	CustomRank func(domain int, in *Inputs, demandA float64, count int) []int
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig(policy PolicyKind) Config {
	return Config{
		Policy:             policy,
		EpochMS:            1.0,
		SensorDelayMS:      0.1,
		WMAWindow:          3,
		EmergencyAccuracy:  0.90,
		EmergencyFalseRate: 0.01,
		TrendGain:          0.45,
		ThermalEmergencyC:  115,
		Seed:               1,
	}
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.Policy < 0 || c.Policy >= NumPolicies {
		return fmt.Errorf("core: unknown policy %d", int(c.Policy))
	}
	// Bounds are phrased as !(inside) so NaN — for which every comparison
	// is false — lands on the rejecting branch instead of slipping through.
	if !(c.EpochMS > 0) || math.IsInf(c.EpochMS, 1) {
		return errors.New("core: epoch must be positive and finite")
	}
	if !(c.SensorDelayMS >= 0 && c.SensorDelayMS <= c.EpochMS) {
		return errors.New("core: sensor delay outside [0, epoch]")
	}
	if c.WMAWindow < 1 {
		return errors.New("core: WMA window must be at least 1")
	}
	if !(c.EmergencyAccuracy >= 0 && c.EmergencyAccuracy <= 1) {
		return errors.New("core: emergency accuracy outside [0,1]")
	}
	if !(c.EmergencyFalseRate >= 0 && c.EmergencyFalseRate <= 1) {
		return errors.New("core: false alarm rate outside [0,1]")
	}
	if !(c.TrendGain >= 0 && c.TrendGain <= 1) {
		return errors.New("core: trend gain outside [0,1]")
	}
	if !(c.ThermalEmergencyC >= 0) || math.IsInf(c.ThermalEmergencyC, 1) {
		return errors.New("core: thermal emergency limit must be finite and non-negative")
	}
	if c.Policy == Custom && c.CustomRank == nil {
		return errors.New("core: Custom policy needs CustomRank")
	}
	return nil
}

// Inputs is everything a policy may consult at one decision point. The
// simulator fills the oracle fields from the *upcoming* interval's truth;
// practical policies only read history and stale sensors.
type Inputs struct {
	// Epoch is the decision index.
	Epoch int
	// PrevDomainCurrent is the previous interval's average load current
	// per domain (amps) — observable history.
	PrevDomainCurrent []float64
	// SensorVRTemps are the regulator temperatures as the (delayed)
	// sensors report them.
	SensorVRTemps []float64
	// VRTemps are the true instantaneous regulator temperatures (the
	// greedy Naïve policy is granted these; practical policies are not).
	VRTemps []float64
	// FutureDomainCurrent is the upcoming interval's true average demand
	// per domain (oracles only).
	FutureDomainCurrent []float64
	// FutureBlockCurrent is the upcoming interval's true per-block current
	// map (oracles only).
	FutureBlockCurrent []float64
	// PredictVRTempOn returns the temperature regulator vr would reach by
	// the next decision point if kept on dissipating plossW (oracles only;
	// the simulator implements it with the exact thermal model).
	PredictVRTempOn func(vrID int, plossW float64) float64
	// DomainEmergency reports whether running the domain with the first
	// `count` regulators of `ranking` active would trigger a voltage
	// emergency during the upcoming interval (ground truth; OracVT uses it
	// directly, PracVT through the stochastic detector).
	DomainEmergency func(domain, count int, ranking []int) bool
}

// DomainDecision is the gating decision for one Vdd-domain: activate the
// first Count regulators of Ranking (local indices into
// Domain.Regulators). The simulator may raise the count — never reorder —
// when the actual demand turns out to need more regulators than
// anticipated (the per-phase current limit is a hard constraint).
type DomainDecision struct {
	Count   int
	Ranking []int
	// EmergencyOverride records that a voltage-emergency alert forced the
	// domain to all-on this interval.
	EmergencyOverride bool
	// ThermalOverride records that the fail-safe thermal limit
	// (Config.ThermalEmergencyC) forced the domain to all-on this interval,
	// spreading the conversion loss across every regulator to cool the
	// hottest one.
	ThermalOverride bool
}

// Decision is the chip-wide gating decision for one interval.
type Decision struct {
	Domains []DomainDecision
}

// ActiveCount returns the total number of active regulators.
func (d *Decision) ActiveCount() int {
	n := 0
	for _, dd := range d.Domains {
		n += dd.Count
	}
	return n
}

// Governor is the ThermoGater control loop of Fig. 3: it monitors power
// demand plus thermal and voltage profiles per Vdd-domain and decides,
// every epoch, which regulators to keep on.
type Governor struct {
	chip     *floorplan.Chip
	networks []*vr.Network
	grid     *pdn.Network
	cfg      Config

	wma           []*stats.WMA
	theta         ThetaModel
	lastPerVRLoss []float64
	prevSensor    []float64
	haveSensor    bool
	rng           *workload.RNG

	sigPred       *signaturePredictor
	lastEmergency []bool
	lastDemand    []float64
	actedLast     []bool

	// Decision scratch, reused across Decide calls so a steady-state
	// decision allocates nothing (see Decide's ownership contract).
	// identity holds one read-only identity ranking per domain; rankBuf
	// one mutable ranking buffer per domain; rankKeys/rankSeen/critBuf
	// are sized for the largest domain and reused serially.
	dec      Decision
	identity [][]int
	rankBuf  [][]int
	rankKeys []float64
	rankSeen []bool
	critBuf  []float64
}

// NewGovernor builds a governor for the chip. networks holds one regulator
// network per Vdd-domain (indexed like chip.Domains).
func NewGovernor(chip *floorplan.Chip, networks []*vr.Network, grid *pdn.Network, cfg Config) (*Governor, error) {
	if chip == nil {
		return nil, errors.New("core: nil chip")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(networks) != len(chip.Domains) {
		return nil, fmt.Errorf("core: %d networks for %d domains", len(networks), len(chip.Domains))
	}
	for i, nw := range networks {
		if nw == nil {
			return nil, fmt.Errorf("core: nil network for domain %d", i)
		}
		if nw.Size() != len(chip.Domains[i].Regulators) {
			return nil, fmt.Errorf("core: network %d sized %d, domain has %d regulators",
				i, nw.Size(), len(chip.Domains[i].Regulators))
		}
	}
	if grid == nil && (cfg.Policy == OracV || cfg.Policy == OracVT || cfg.Policy == PracVT) {
		return nil, fmt.Errorf("core: policy %v needs a PDN model", cfg.Policy)
	}
	g := &Governor{
		chip:          chip,
		networks:      networks,
		grid:          grid,
		cfg:           cfg,
		lastPerVRLoss: make([]float64, len(chip.Regulators)),
		prevSensor:    make([]float64, len(chip.Regulators)),
		rng:           workload.NewRNG(cfg.Seed ^ 0xe6e7),
		lastEmergency: make([]bool, len(chip.Domains)),
		lastDemand:    make([]float64, len(chip.Domains)),
		actedLast:     make([]bool, len(chip.Domains)),
	}
	if cfg.Detector == DetectSignature {
		g.sigPred = newSignaturePredictor(len(chip.Domains))
	}
	g.wma = make([]*stats.WMA, len(chip.Domains))
	for i := range g.wma {
		w, err := stats.NewWMA(cfg.WMAWindow)
		if err != nil {
			return nil, err
		}
		g.wma[i] = w
	}
	g.dec.Domains = make([]DomainDecision, len(chip.Domains))
	g.identity = make([][]int, len(chip.Domains))
	g.rankBuf = make([][]int, len(chip.Domains))
	maxN := 0
	for d := range chip.Domains {
		n := len(chip.Domains[d].Regulators)
		if n > maxN {
			maxN = n
		}
		g.identity[d] = make([]int, n)
		for i := range g.identity[d] {
			g.identity[d][i] = i
		}
		g.rankBuf[d] = make([]int, n)
	}
	g.rankKeys = make([]float64, maxN)
	g.rankSeen = make([]bool, maxN)
	g.critBuf = make([]float64, maxN)
	return g, nil
}

// Config returns the governor configuration.
func (g *Governor) Config() Config { return g.cfg }

// SetTheta installs the Eqn. 2 predictor extracted from a profiling pass;
// required before PracT/PracVT decisions.
func (g *Governor) SetTheta(m ThetaModel) error {
	if len(m.Theta) != len(g.chip.Regulators) {
		return fmt.Errorf("core: theta for %d regulators, chip has %d", len(m.Theta), len(g.chip.Regulators))
	}
	g.theta = m
	return nil
}

// Theta returns the installed predictor (empty until SetTheta).
func (g *Governor) Theta() ThetaModel { return g.theta }

// Observe feeds back the completed interval's actual per-domain currents
// and per-regulator losses: the demand history drives the WMA forecaster,
// the loss history anchors ΔP in Eqn. 2.
func (g *Governor) Observe(domainCurrent, perVRLoss []float64) error {
	if len(domainCurrent) != len(g.chip.Domains) {
		return fmt.Errorf("core: %d domain currents, chip has %d domains", len(domainCurrent), len(g.chip.Domains))
	}
	if len(perVRLoss) != len(g.chip.Regulators) {
		return fmt.Errorf("core: %d VR losses, chip has %d regulators", len(perVRLoss), len(g.chip.Regulators))
	}
	for d, c := range domainCurrent {
		g.wma[d].Observe(c)
	}
	copy(g.lastDemand, domainCurrent)
	copy(g.lastPerVRLoss, perVRLoss)
	return nil
}

// ObserveEmergencies feeds back which domains actually experienced a
// voltage emergency during the completed interval; the signature detector
// learns from it and the VT policies use it as the persistence signal.
func (g *Governor) ObserveEmergencies(actual []bool) error {
	if len(actual) != len(g.chip.Domains) {
		return fmt.Errorf("core: %d emergency flags, chip has %d domains", len(actual), len(g.chip.Domains))
	}
	for d, e := range actual {
		if g.sigPred != nil {
			g.sigPred.learn(d, e, g.actedLast[d])
			// A suppressed alert still marks the interval as droop-prone
			// for the next signature.
			g.lastEmergency[d] = e || g.actedLast[d]
		} else {
			g.lastEmergency[d] = e
		}
	}
	return nil
}

// DetectorStats returns the signature detector's confusion matrix; the
// zero value is returned for the stochastic detector.
func (g *Governor) DetectorStats() PredictorStats {
	if g.sigPred == nil {
		return PredictorStats{}
	}
	return g.sigPred.stats
}

// Decide produces the gating decision for the upcoming interval.
//
// Ownership: the returned Decision (including every Ranking slice) is
// owned by the governor and reused on the next Decide call. Callers
// that need a decision beyond the current interval — or across two
// Decide calls on the same governor — must copy what they keep. The
// epoch loop consumes each decision within its interval, so the reuse
// keeps the steady-state decision path allocation-free.
func (g *Governor) Decide(in *Inputs) (*Decision, error) {
	if in == nil {
		return nil, errors.New("core: nil inputs")
	}
	dec := &g.dec
	for d := range g.chip.Domains {
		dd, err := g.decideDomain(d, in)
		if err != nil {
			return nil, err
		}
		dec.Domains[d] = dd
	}
	// Remember this decision point's sensor snapshot for the trend term.
	if len(in.SensorVRTemps) == len(g.chip.Regulators) {
		copy(g.prevSensor, in.SensorVRTemps)
		g.haveSensor = true
	}
	return dec, nil
}

func (g *Governor) decideDomain(d int, in *Inputs) (DomainDecision, error) {
	dom := &g.chip.Domains[d]
	n := len(dom.Regulators)
	identity := g.identity[d]

	switch g.cfg.Policy {
	case OffChip:
		return DomainDecision{Count: 0, Ranking: identity}, nil
	case AllOn:
		return DomainDecision{Count: n, Ranking: identity}, nil
	}

	demand, err := g.anticipatedDemand(d, in)
	if err != nil {
		return DomainDecision{}, err
	}
	count := g.networks[d].NOn(demand)

	// Every key-driven policy fills rankKeys[i] for local index i and
	// then sorts the domain's ranking buffer by it. Computing the keys
	// into the governor-held buffer up front (exactly once per element,
	// like the old sort's key snapshot) keeps the decision free of both
	// the key closure and the sort's allocations.
	var ranking []int
	keys := g.rankKeys
	switch g.cfg.Policy {
	case Naive:
		if len(in.VRTemps) != len(g.chip.Regulators) {
			return DomainDecision{}, errors.New("core: Naive needs instantaneous VR temperatures")
		}
		for i, rid := range dom.Regulators {
			keys[i] = in.VRTemps[rid]
		}
		ranking = g.rankAscending(d, dom)

	case OracT, OracVT:
		if in.PredictVRTempOn == nil {
			return DomainDecision{}, errors.New("core: oracle policies need PredictVRTempOn")
		}
		loss := g.networks[d].PerVRLoss(demand, count)
		for i, rid := range dom.Regulators {
			keys[i] = in.PredictVRTempOn(rid, loss)
		}
		ranking = g.rankAscending(d, dom)

	case OracV:
		if len(in.FutureBlockCurrent) != len(g.chip.Blocks) {
			return DomainDecision{}, errors.New("core: OracV needs the future block current map")
		}
		crit := g.critBuf[:n]
		if err := g.grid.VRCriticalityInto(d, in.FutureBlockCurrent, crit); err != nil {
			return DomainDecision{}, err
		}
		// Highest criticality first: keep the regulators closest to the
		// voltage-noise-critical load on. crit is indexed by local index
		// already, so the key for local index i is just -crit[i].
		for i := range dom.Regulators {
			keys[i] = -crit[i]
		}
		ranking = g.rankAscending(d, dom)

	case PracT, PracVT:
		if len(g.theta.Theta) == 0 {
			return DomainDecision{}, errors.New("core: PracT needs a trained theta model (SetTheta)")
		}
		if len(in.SensorVRTemps) != len(g.chip.Regulators) {
			return DomainDecision{}, errors.New("core: PracT needs sensor VR temperatures")
		}
		lossIfOn := g.networks[d].PerVRLoss(demand, count)
		for i, rid := range dom.Regulators {
			dP := lossIfOn - g.lastPerVRLoss[rid]
			anticipated := g.theta.Predict(rid, in.SensorVRTemps[rid], dP)
			// Sensor-trend compensation for mid-transient regulators.
			if g.haveSensor && g.cfg.TrendGain > 0 {
				anticipated += g.cfg.TrendGain * (in.SensorVRTemps[rid] - g.prevSensor[rid])
			}
			keys[i] = anticipated
		}
		ranking = g.rankAscending(d, dom)

	case Custom:
		ranking = g.cfg.CustomRank(d, in, demand, count)
		if err := g.validRanking(dom, ranking); err != nil {
			return DomainDecision{}, err
		}

	default:
		return DomainDecision{}, fmt.Errorf("core: unhandled policy %v", g.cfg.Policy)
	}

	dd := DomainDecision{Count: count, Ranking: ranking}

	// Voltage-emergency handling (Section 6.2.4 / 6.3): upon an alert the
	// affected domain turns all regulators on, relaxing the peak-efficiency
	// constraint for this (rare) interval.
	switch g.cfg.Policy {
	case OracVT:
		if in.DomainEmergency == nil {
			return DomainDecision{}, errors.New("core: OracVT needs DomainEmergency")
		}
		if in.DomainEmergency(d, count, ranking) {
			dd.Count = n
			dd.EmergencyOverride = true
		}
	case PracVT:
		alert := false
		if g.sigPred != nil {
			sig := emergencySignature(d, demand, demand > g.lastDemand[d], g.lastEmergency[d])
			alert = g.sigPred.predict(d, sig)
			g.actedLast[d] = alert
		} else {
			if in.DomainEmergency == nil {
				return DomainDecision{}, errors.New("core: PracVT needs DomainEmergency")
			}
			truth := in.DomainEmergency(d, count, ranking)
			if truth {
				alert = g.rng.Float64() < g.cfg.EmergencyAccuracy
			} else {
				alert = g.rng.Float64() < g.cfg.EmergencyFalseRate
			}
		}
		if alert {
			dd.Count = n
			dd.EmergencyOverride = true
		}
	}

	// Fail-safe thermal emergency (robustness, not in the paper): if any of
	// the domain's sensors reads at or beyond the hard limit, force all-on.
	// Spreading the load across every phase minimises per-regulator loss,
	// which is the strongest cooling action the governor has. This uses the
	// (possibly faulty) sensor readings on purpose — it is the last line of
	// defence when the policy above mis-gated because of bad inputs.
	if g.cfg.ThermalEmergencyC > 0 && len(in.SensorVRTemps) == len(g.chip.Regulators) {
		for _, rid := range dom.Regulators {
			if in.SensorVRTemps[rid] >= g.cfg.ThermalEmergencyC {
				dd.Count = n
				dd.ThermalOverride = true
				break
			}
		}
	}
	return dd, nil
}

// anticipatedDemand returns the domain current (amps) the policy sizes
// n_on against.
func (g *Governor) anticipatedDemand(d int, in *Inputs) (float64, error) {
	switch g.cfg.Policy {
	case Naive:
		if len(in.PrevDomainCurrent) != len(g.chip.Domains) {
			return 0, errors.New("core: Naive needs the previous interval's demand")
		}
		return in.PrevDomainCurrent[d], nil
	case OracT, OracV, OracVT:
		if len(in.FutureDomainCurrent) != len(g.chip.Domains) {
			return 0, errors.New("core: oracle policies need the future demand")
		}
		return in.FutureDomainCurrent[d], nil
	case PracT, PracVT, Custom:
		if g.wma[d].Ready() {
			return g.wma[d].Predict(), nil
		}
		if len(in.PrevDomainCurrent) == len(g.chip.Domains) {
			return in.PrevDomainCurrent[d], nil
		}
		return 0, nil
	}
	//perf:alloc unreachable fall-through for configurations that pass Validate; kept as a guard
	return 0, fmt.Errorf("core: policy %v does not size n_on", g.cfg.Policy)
}

// rankAscending orders domain d's regulators (as local indices) by the
// keys the caller filled into g.rankKeys, lowest first, breaking ties
// by regulator ID for determinism. The (key, ID) pair is a strict total
// order over finite keys — IDs are unique — so any comparison sort
// yields the same unique permutation the previous sort.SliceStable did;
// a stable insertion sort over the governor-held buffer gets it without
// allocating (domains hold a handful of regulators, so O(n²) is cheap).
func (g *Governor) rankAscending(d int, dom *floorplan.Domain) []int {
	keys := g.rankKeys
	out := g.rankBuf[d]
	for i := range out {
		out[i] = i
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			var less bool
			//lint:ignore floatcheck exact comparison is required: an epsilon would break the comparator's strict weak ordering
			if keys[b] != keys[a] {
				less = keys[b] < keys[a]
			} else {
				less = dom.Regulators[b] < dom.Regulators[a]
			}
			if !less {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// validRanking checks that a user-supplied ranking is a permutation of the
// domain's regulator local indices.
func (g *Governor) validRanking(dom *floorplan.Domain, ranking []int) error {
	n := len(dom.Regulators)
	if len(ranking) != n {
		return fmt.Errorf("core: custom ranking for domain %s has %d entries, want %d",
			dom.Name, len(ranking), n)
	}
	seen := g.rankSeen[:n]
	for i := range seen {
		seen[i] = false
	}
	for _, idx := range ranking {
		if idx < 0 || idx >= n || seen[idx] {
			return fmt.Errorf("core: custom ranking for domain %s is not a permutation", dom.Name)
		}
		seen[idx] = true
	}
	return nil
}
