package core

import (
	"math"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]PolicyKind{
		"off-chip": OffChip,
		"offchip":  OffChip,
		"all-on":   AllOn,
		"ALLON":    AllOn,
		"naive":    Naive,
		"Naïve":    Naive,
		"OracT":    OracT,
		"oracv":    OracV,
		"OracVT":   OracVT,
		"pracT":    PracT,
		"PracVT":   PracVT,
		" pracvt ": PracVT,
	}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParsePolicy("magic"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for p := PolicyKind(0); p < NumPolicies; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("round trip %v: %v", p, err)
			continue
		}
		if got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestPolicyClassification(t *testing.T) {
	if !OracT.IsOracular() || !OracV.IsOracular() || !OracVT.IsOracular() {
		t.Error("oracle policies misclassified")
	}
	if PracT.IsOracular() || AllOn.IsOracular() || Naive.IsOracular() {
		t.Error("non-oracle policies misclassified")
	}
	for _, p := range []PolicyKind{Naive, OracT, OracVT, PracT, PracVT} {
		if !p.IsThermallyAware() {
			t.Errorf("%v must be thermally aware", p)
		}
	}
	for _, p := range []PolicyKind{OffChip, AllOn, OracV} {
		if p.IsThermallyAware() {
			t.Errorf("%v must not be thermally aware", p)
		}
	}
}

func TestPolicyLists(t *testing.T) {
	if len(AllPolicies()) != 8 {
		t.Errorf("AllPolicies has %d entries, want 8", len(AllPolicies()))
	}
	gated := GatedPolicies()
	if len(gated) != 6 {
		t.Errorf("GatedPolicies has %d entries, want 6", len(gated))
	}
	for _, p := range gated {
		if p == OffChip {
			t.Error("off-chip listed among gated policies")
		}
	}
}

func TestFitTheta(t *testing.T) {
	// Two regulators with known slopes plus small noise.
	dP := [][]float64{
		{0.1, -0.05, 0.2, 0.15, -0.1},
		{0.3, 0.1, -0.2, 0.05, 0.25},
	}
	slopes := []float64{30, 45}
	dT := make([][]float64, 2)
	for i := range dP {
		dT[i] = make([]float64, len(dP[i]))
		for k, p := range dP[i] {
			dT[i][k] = slopes[i] * p
		}
	}
	m, err := FitTheta(dP, dT)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range slopes {
		if math.Abs(m.Theta[i]-want) > 1e-9 {
			t.Errorf("theta[%d] = %v, want %v", i, m.Theta[i], want)
		}
		if m.R2[i] < 0.999 {
			t.Errorf("noiseless fit R2[%d] = %v", i, m.R2[i])
		}
	}
	if m.MeanR2() < 0.999 {
		t.Errorf("MeanR2 = %v", m.MeanR2())
	}
}

func TestFitThetaValidation(t *testing.T) {
	if _, err := FitTheta(nil, nil); err == nil {
		t.Error("empty traces accepted")
	}
	if _, err := FitTheta([][]float64{{1, 2}}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("trace count mismatch accepted")
	}
	if _, err := FitTheta([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Error("sample count mismatch accepted")
	}
	if _, err := FitTheta([][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Error("single sample accepted")
	}
}

func TestThetaPredict(t *testing.T) {
	m := ThetaModel{Theta: []float64{10}}
	if got := m.Predict(0, 60, 0.2); math.Abs(got-62) > 1e-12 {
		t.Errorf("Predict = %v, want 62", got)
	}
	// Out-of-range index degrades to the sensor reading.
	if got := m.Predict(5, 60, 0.2); got != 60 {
		t.Errorf("out-of-range Predict = %v, want 60", got)
	}
	if got := m.Predict(-1, 60, 0.2); got != 60 {
		t.Errorf("negative-index Predict = %v, want 60", got)
	}
}

func TestMeanR2Empty(t *testing.T) {
	if got := (ThetaModel{}).MeanR2(); got != 0 {
		t.Errorf("empty MeanR2 = %v", got)
	}
}
