package core

import (
	"errors"
	"fmt"

	"thermogater/internal/stats"
)

// ThetaModel holds the per-regulator proportionality constants of the
// paper's Eqn. 2, ΔTᵢ = θᵢ·ΔPᵢ: the linear model PracT uses to anticipate
// each regulator's temperature from the anticipated change in its
// conversion loss. The constants are extracted from power and thermal
// traces collected in a profiling pass, and their quality is quantified by
// the per-regulator coefficient of determination R² (Eqn. 3) — the paper
// calibrates to R² ≈ 0.99.
type ThetaModel struct {
	// Theta holds θᵢ per regulator (K/W).
	Theta []float64
	// R2 holds the per-regulator fit quality.
	R2 []float64
}

// FitTheta extracts θᵢ from profiling traces: dP[i] and dT[i] are the
// observed per-decision-point changes in regulator i's dissipation (W) and
// temperature (°C). Every regulator needs at least two samples.
func FitTheta(dP, dT [][]float64) (ThetaModel, error) {
	if len(dP) == 0 {
		return ThetaModel{}, errors.New("core: no profiling traces")
	}
	if len(dP) != len(dT) {
		return ThetaModel{}, errors.New("core: trace count mismatch")
	}
	m := ThetaModel{
		Theta: make([]float64, len(dP)),
		R2:    make([]float64, len(dP)),
	}
	for i := range dP {
		if len(dP[i]) != len(dT[i]) {
			return ThetaModel{}, fmt.Errorf("core: regulator %d: sample count mismatch", i)
		}
		if len(dP[i]) < 2 {
			return ThetaModel{}, fmt.Errorf("core: regulator %d: need at least 2 samples, got %d", i, len(dP[i]))
		}
		theta, err := stats.LinearFitThroughOrigin(dP[i], dT[i])
		if err != nil {
			return ThetaModel{}, fmt.Errorf("core: regulator %d: %w", i, err)
		}
		m.Theta[i] = theta
		pred := make([]float64, len(dP[i]))
		for k, p := range dP[i] {
			pred[k] = theta * p
		}
		r2, err := stats.RSquared(dT[i], pred)
		if err != nil {
			return ThetaModel{}, fmt.Errorf("core: regulator %d: %w", i, err)
		}
		m.R2[i] = r2
	}
	return m, nil
}

// MeanR2 returns the average fit quality across regulators.
func (m ThetaModel) MeanR2() float64 {
	if len(m.R2) == 0 {
		return 0
	}
	var s float64
	for _, r := range m.R2 {
		s += r
	}
	return s / float64(len(m.R2))
}

// Predict applies Eqn. 2: the anticipated temperature of regulator i given
// its (possibly stale) sensor reading and the anticipated change in its
// dissipation.
func (m ThetaModel) Predict(i int, sensorTempC, dPW float64) float64 {
	if i < 0 || i >= len(m.Theta) {
		return sensorTempC
	}
	return sensorTempC + m.Theta[i]*dPW
}
