package core

import "fmt"

// DetectorKind selects how the practical VT policy anticipates voltage
// emergencies (Section 6.3, after Reddi et al.: "Predicting Voltage Droops
// Using Recurring Program and Microarchitectural Event Activity").
type DetectorKind int

const (
	// DetectStochastic models the published >90%-accuracy detector
	// abstractly: a coin weighted by Config.EmergencyAccuracy over the
	// ground truth. This is the paper's operating assumption.
	DetectStochastic DetectorKind = iota
	// DetectSignature is a concrete Reddi-style predictor: it learns
	// which recurring activity signatures precede emergencies using
	// per-signature saturating counters (like a branch predictor) and
	// consults only observable state — no oracle at decision time.
	DetectSignature
)

// String implements fmt.Stringer.
func (k DetectorKind) String() string {
	switch k {
	case DetectStochastic:
		return "stochastic"
	case DetectSignature:
		return "signature"
	default:
		return fmt.Sprintf("DetectorKind(%d)", int(k))
	}
}

// PredictorStats tallies a detector's confusion matrix over a run.
// Suppressed counts alerts whose protective action (all-on) was followed
// by no emergency: operationally successes, but with an unobservable
// counterfactual, so they are excluded from the plain confusion matrix.
type PredictorStats struct {
	TruePositive, FalsePositive, TrueNegative, FalseNegative int
	Suppressed                                               int
}

// Recall returns the fraction of actual emergencies that were predicted.
func (s PredictorStats) Recall() float64 {
	d := s.TruePositive + s.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// EffectiveRecall treats suppressed alerts (action taken, no emergency
// materialised) as successes — the operational hit rate of the detector.
func (s PredictorStats) EffectiveRecall() float64 {
	d := s.TruePositive + s.Suppressed + s.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive+s.Suppressed) / float64(d)
}

// Precision returns the fraction of alerts that were real.
func (s PredictorStats) Precision() float64 {
	d := s.TruePositive + s.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// Accuracy returns the overall hit rate.
func (s PredictorStats) Accuracy() float64 {
	n := s.TruePositive + s.FalsePositive + s.TrueNegative + s.FalseNegative
	if n == 0 {
		return 0
	}
	return float64(s.TruePositive+s.TrueNegative) / float64(n)
}

// signaturePredictor learns (signature → emergency) associations with
// 2-bit saturating counters.
type signaturePredictor struct {
	table   map[uint32]uint8
	pending []uint32 // per domain: the signature the last prediction used
	hasPend []bool
	stats   PredictorStats
}

func newSignaturePredictor(domains int) *signaturePredictor {
	return &signaturePredictor{
		table:   make(map[uint32]uint8),
		pending: make([]uint32, domains),
		hasPend: make([]bool, domains),
	}
}

// signature hashes the observable per-domain state: the quantised demand
// level, its trend, and — the strongest signal, since droop storms persist
// across intervals — whether the domain was in an emergency last interval.
func emergencySignature(domain int, demandA float64, trendUp, lastEmergency bool) uint32 {
	level := uint32(demandA)
	if level > 15 {
		level = 15
	}
	sig := uint32(domain)<<8 | level<<2
	if trendUp {
		sig |= 2
	}
	if lastEmergency {
		sig |= 1
	}
	return sig
}

// predict consults the counter table and records the pending signature.
func (p *signaturePredictor) predict(domain int, sig uint32) bool {
	p.pending[domain] = sig
	p.hasPend[domain] = true
	return p.table[sig] >= 2
}

// learn resolves the pending prediction for the domain against the truth.
// acted reports whether the prediction triggered the all-on override: a
// quiet interval after an acted-on alert is (most likely) a *suppressed*
// emergency, so the counters are left armed rather than decremented —
// without this, a successful detector would immediately unlearn itself.
func (p *signaturePredictor) learn(domain int, emergency, acted bool) {
	if !p.hasPend[domain] {
		return
	}
	sig := p.pending[domain]
	p.hasPend[domain] = false
	predicted := p.table[sig] >= 2
	if acted && !emergency {
		p.stats.Suppressed++
		return
	}
	switch {
	case predicted && emergency:
		p.stats.TruePositive++
	case predicted && !emergency:
		p.stats.FalsePositive++
	case !predicted && emergency:
		p.stats.FalseNegative++
	default:
		p.stats.TrueNegative++
	}
	c := p.table[sig]
	if emergency {
		if c < 3 {
			p.table[sig] = c + 1
		}
	} else {
		if c > 0 {
			p.table[sig] = c - 1
		}
	}
}
