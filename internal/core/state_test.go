package core

import (
	"reflect"
	"testing"
)

// TestThermalFailSafeOverride covers the last line of thermal defence: any
// regulator sensor at or above ThermalEmergencyC forces its whole domain
// to all-on, regardless of what the policy decided, and flags the decision
// so the runner can count it.
func TestThermalFailSafeOverride(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, OracT)
	in := r.flatInputs(20)

	dec, err := g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	for d := range dec.Domains {
		if dec.Domains[d].ThermalOverride {
			t.Fatalf("domain %d flagged ThermalOverride at a uniform 60°C", d)
		}
	}

	// One runaway sensor in domain 2, above the 115°C default limit.
	hot := r.chip.Domains[2].Regulators[1]
	in.SensorVRTemps[hot] = 140
	dec, err = g.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	dd := &dec.Domains[2]
	if !dd.ThermalOverride {
		t.Fatal("140°C sensor did not trigger the fail-safe")
	}
	if want := len(r.chip.Domains[2].Regulators); dd.Count != want {
		t.Errorf("fail-safe count %d, want all %d regulators on", dd.Count, want)
	}
	for d := range dec.Domains {
		if d != 2 && dec.Domains[d].ThermalOverride {
			t.Errorf("domain %d overridden by domain 2's sensor", d)
		}
	}

	// Disabled limit: no override even at an absurd reading.
	cfg := DefaultConfig(OracT)
	cfg.ThermalEmergencyC = 0
	goff, err := NewGovernor(r.chip, r.networks, r.grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = goff.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Domains[2].ThermalOverride {
		t.Error("ThermalEmergencyC=0 should disable the fail-safe")
	}
}

// TestGovernorStateRoundTrip verifies State/Restore carry every piece of
// the governor's cross-epoch memory: a restored governor must make exactly
// the decisions the original would have made.
func TestGovernorStateRoundTrip(t *testing.T) {
	r := newRig(t)
	g := r.governor(t, PracVT)

	// Accumulate non-trivial WMA, detector and predictor state.
	in := r.flatInputs(25)
	nD := len(r.chip.Domains)
	nR := len(r.chip.Regulators)
	theta := ThetaModel{Theta: make([]float64, nR), R2: make([]float64, nR)}
	for i := range theta.Theta {
		theta.Theta[i] = 25 + float64(i%9)
		theta.R2[i] = 0.99
	}
	if err := g.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := g.Decide(in); err != nil {
			t.Fatal(err)
		}
		cur := make([]float64, nD)
		loss := make([]float64, nR)
		for d := range cur {
			cur[d] = 20 + float64(i%5)
		}
		for v := range loss {
			loss[v] = 0.1 + 0.01*float64(v%7)
		}
		if err := g.Observe(cur, loss); err != nil {
			t.Fatal(err)
		}
		emerg := make([]bool, nD)
		emerg[i%nD] = true
		if err := g.ObserveEmergencies(emerg); err != nil {
			t.Fatal(err)
		}
	}

	snap := g.State()
	g2 := r.governor(t, PracVT)
	if err := g2.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Both governors must now evolve identically.
	for i := 0; i < 5; i++ {
		in.PrevDomainCurrent[0] = 18 + float64(i)
		dA, err := g.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		dB, err := g2.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dA, dB) {
			t.Fatalf("step %d: restored governor diverged:\n  original: %+v\n  restored: %+v", i, dA, dB)
		}
	}
	if !reflect.DeepEqual(g.DetectorStats(), g2.DetectorStats()) {
		t.Error("detector stats not carried across State/Restore")
	}

	// Rejections: nil, shape mismatch, policy mismatch.
	if err := g2.Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	bad := g.State()
	bad.WMA = bad.WMA[:1]
	if err := g2.Restore(bad); err == nil {
		t.Error("short WMA state accepted")
	}
	sigCfg := DefaultConfig(PracVT)
	sigCfg.Detector = DetectSignature
	sigGov, err := NewGovernor(r.chip, r.networks, r.grid, sigCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sigGov.Restore(g.State()); err == nil {
		t.Error("state restored across different detector configurations")
	}
}
