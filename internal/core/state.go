package core

import (
	"errors"
	"fmt"

	"thermogater/internal/stats"
)

// SignatureState is the serializable state of the signature emergency
// detector: the saturating-counter table plus the per-domain pending
// predictions awaiting resolution by ObserveEmergencies.
type SignatureState struct {
	Table   map[uint32]uint8
	Pending []uint32
	HasPend []bool
	Stats   PredictorStats
}

// GovernorState is a deep snapshot of everything a Governor mutates across
// epochs. Capturing it mid-run and restoring it into a freshly constructed
// Governor (same chip, networks and Config) resumes decision-making
// bit-identically — the checkpoint/resume determinism harness in
// internal/sim relies on this.
type GovernorState struct {
	WMA           []stats.WMAState
	Theta         ThetaModel
	LastPerVRLoss []float64
	PrevSensor    []float64
	HaveSensor    bool
	RNG           uint64
	LastEmergency []bool
	LastDemand    []float64
	ActedLast     []bool
	// Signature is nil unless Config.Detector == DetectSignature.
	Signature *SignatureState
}

// State captures the governor's mutable state. The returned value shares
// nothing with the governor.
func (g *Governor) State() *GovernorState {
	s := &GovernorState{
		WMA:           make([]stats.WMAState, len(g.wma)),
		Theta:         ThetaModel{Theta: cloneFloats(g.theta.Theta), R2: cloneFloats(g.theta.R2)},
		LastPerVRLoss: cloneFloats(g.lastPerVRLoss),
		PrevSensor:    cloneFloats(g.prevSensor),
		HaveSensor:    g.haveSensor,
		RNG:           g.rng.State(),
		LastEmergency: cloneBools(g.lastEmergency),
		LastDemand:    cloneFloats(g.lastDemand),
		ActedLast:     cloneBools(g.actedLast),
	}
	for i, w := range g.wma {
		s.WMA[i] = w.State()
	}
	if g.sigPred != nil {
		sig := &SignatureState{
			Table:   make(map[uint32]uint8, len(g.sigPred.table)),
			Pending: append([]uint32(nil), g.sigPred.pending...),
			HasPend: cloneBools(g.sigPred.hasPend),
			Stats:   g.sigPred.stats,
		}
		//par:ordered map-to-map copy; the snapshot is order-independent
		for k, v := range g.sigPred.table {
			sig.Table[k] = v
		}
		s.Signature = sig
	}
	return s
}

// Restore loads a snapshot previously taken by State into the governor.
// The governor must have been constructed for the same chip and Config;
// shape mismatches are rejected without partially applying the state.
func (g *Governor) Restore(s *GovernorState) error {
	if s == nil {
		return errors.New("core: nil governor state")
	}
	nd, nr := len(g.chip.Domains), len(g.chip.Regulators)
	if len(s.WMA) != nd || len(s.LastEmergency) != nd || len(s.LastDemand) != nd || len(s.ActedLast) != nd {
		return fmt.Errorf("core: governor state sized for %d domains, chip has %d", len(s.WMA), nd)
	}
	if len(s.LastPerVRLoss) != nr || len(s.PrevSensor) != nr {
		return fmt.Errorf("core: governor state sized for %d regulators, chip has %d", len(s.LastPerVRLoss), nr)
	}
	if len(s.Theta.Theta) != 0 && len(s.Theta.Theta) != nr {
		return fmt.Errorf("core: theta state for %d regulators, chip has %d", len(s.Theta.Theta), nr)
	}
	if (g.sigPred != nil) != (s.Signature != nil) {
		return errors.New("core: detector kind mismatch between governor and state")
	}
	if s.Signature != nil {
		if len(s.Signature.Pending) != nd || len(s.Signature.HasPend) != nd {
			return fmt.Errorf("core: signature state sized for %d domains, chip has %d", len(s.Signature.Pending), nd)
		}
	}
	for i, w := range g.wma {
		if err := w.Restore(s.WMA[i]); err != nil {
			return fmt.Errorf("core: wma %d: %w", i, err)
		}
	}
	g.theta = ThetaModel{Theta: cloneFloats(s.Theta.Theta), R2: cloneFloats(s.Theta.R2)}
	copy(g.lastPerVRLoss, s.LastPerVRLoss)
	copy(g.prevSensor, s.PrevSensor)
	g.haveSensor = s.HaveSensor
	g.rng.SetState(s.RNG)
	copy(g.lastEmergency, s.LastEmergency)
	copy(g.lastDemand, s.LastDemand)
	copy(g.actedLast, s.ActedLast)
	if s.Signature != nil {
		g.sigPred.table = make(map[uint32]uint8, len(s.Signature.Table))
		for k, v := range s.Signature.Table {
			g.sigPred.table[k] = v
		}
		copy(g.sigPred.pending, s.Signature.Pending)
		copy(g.sigPred.hasPend, s.Signature.HasPend)
		g.sigPred.stats = s.Signature.Stats
	}
	return nil
}

func cloneFloats(v []float64) []float64 {
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}

func cloneBools(v []bool) []bool {
	if v == nil {
		return nil
	}
	return append([]bool(nil), v...)
}
