// Package core implements ThermoGater, the paper's contribution: an
// architectural governor that orchestrates thermally-aware gating of the
// distributed on-chip voltage regulators. Every millisecond the governor
// (1) determines, per Vdd-domain, the number of active regulators n_on
// required to sustain operation at the peak conversion efficiency for the
// anticipated current demand (Section 6.1), and (2) selects *which* n_on
// regulators to activate (Section 6.2), trading the thermal profile against
// voltage noise exactly as the paper's policy ladder does:
//
//	off-chip — no on-chip regulation (thermal baseline)
//	all-on   — every regulator always active (voltage-noise best case)
//	Naïve    — greedy: activate the currently coolest regulators
//	OracT    — oracle: activate the coolest-to-be regulators
//	OracV    — oracle: activate the most noise-critical regulators
//	OracVT   — OracT, switching a domain to all-on on (perfectly
//	           predicted) voltage emergencies
//	PracT    — OracT with real-world limitations: stale sensors, a WMA
//	           demand forecast, and the linear ΔT = θ·ΔP predictor (Eqn 2)
//	PracVT   — PracT plus a ~90%-accurate voltage-emergency predictor
package core

import (
	"fmt"
	"strings"
)

// PolicyKind identifies one gating policy.
type PolicyKind int

const (
	// OffChip disables on-chip regulation entirely.
	OffChip PolicyKind = iota
	// AllOn keeps all 96 regulators active all the time.
	AllOn
	// Naive activates the n_on currently-coolest regulators (Section 6.2.1).
	Naive
	// OracT activates the n_on coolest-to-be regulators using oracular
	// knowledge of future demand and temperature (Section 6.2.2).
	OracT
	// OracV activates the n_on most noise-critical regulators using
	// oracular knowledge of the future current map (Section 6.2.3).
	OracV
	// OracVT mimics OracT but switches a domain to all-on upon a
	// (perfectly predicted) voltage emergency (Section 6.2.4).
	OracVT
	// PracT is the practical counterpart of OracT (Section 6.3).
	PracT
	// PracVT is the practical counterpart of OracVT (Section 6.3).
	PracVT
	// Custom delegates regulator ranking to a user-supplied function (see
	// Config.CustomRank); n_on sizing still follows the practical WMA
	// forecaster so the peak-efficiency constraint is preserved.
	Custom
	// NumPolicies is the number of defined policies.
	NumPolicies
)

var policyNames = [NumPolicies]string{
	"off-chip", "all-on", "naive", "oracT", "oracV", "oracVT", "pracT", "pracVT", "custom",
}

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	if p >= 0 && int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("PolicyKind(%d)", int(p))
}

// ParsePolicy resolves a policy name (case-insensitive; accepts the paper's
// spellings like "OracVT" and "Naïve").
func ParsePolicy(s string) (PolicyKind, error) {
	key := strings.ToLower(strings.TrimSpace(s))
	key = strings.ReplaceAll(key, "ï", "i")
	for i, n := range policyNames {
		if key == n || key == strings.ToLower(n) {
			return PolicyKind(i), nil
		}
	}
	switch key {
	case "offchip", "off_chip":
		return OffChip, nil
	case "allon", "all_on":
		return AllOn, nil
	case "oract":
		return OracT, nil
	case "oracv":
		return OracV, nil
	case "oracvt":
		return OracVT, nil
	case "pract":
		return PracT, nil
	case "pracvt":
		return PracVT, nil
	}
	return 0, fmt.Errorf("core: unknown policy %q", s)
}

// AllPolicies lists every policy in the order the paper's figures use.
func AllPolicies() []PolicyKind {
	return []PolicyKind{Naive, OracT, OracV, OracVT, PracT, PracVT, AllOn, OffChip}
}

// GatedPolicies lists the policies that actually gate regulators (those
// whose noise Fig. 11 reports, plus all-on as the reference).
func GatedPolicies() []PolicyKind {
	return []PolicyKind{OracT, OracV, OracVT, PracT, PracVT, AllOn}
}

// IsOracular reports whether the policy assumes oracular knowledge.
func (p PolicyKind) IsOracular() bool {
	return p == OracT || p == OracV || p == OracVT
}

// IsThermallyAware reports whether the policy uses thermal information in
// regulator selection.
func (p PolicyKind) IsThermallyAware() bool {
	switch p {
	case Naive, OracT, OracVT, PracT, PracVT:
		return true
	default:
		return false
	}
}
