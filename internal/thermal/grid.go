package thermal

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
	"thermogater/internal/invariant"
	"thermogater/internal/par"
)

// GridModel is the fine-grid counterpart of the compact block-mode Model —
// HotSpot's "grid mode". The die and the spreader are rasterised onto an
// nx×ny cell lattice: every cell gets its area share of the power of the
// block under it, regulator losses are injected into the single cell
// containing the regulator, and heat conducts laterally between adjacent
// cells, vertically into the spreader layer, and out through the lumped
// sink. It resolves intra-block temperature structure the compact model
// cannot (regulator hotspots narrower than a block), and the test suite
// uses it to validate the compact model's block temperatures.
type GridModel struct {
	chip *floorplan.Chip
	cfg  Config

	nx, ny int
	cw, ch float64 // cell dimensions, mm

	// Layers: die cells [0, n), spreader cells [n, 2n), sink node 2n.
	n    int
	sink int

	cellBlock []int     // block ID under each die cell
	power     []float64 // W per node
	temp      []float64 // °C per node
	delta     []float64 // scratch buffer for Step

	gLatDie    float64 // lateral conductance between adjacent die cells
	gLatSpread float64
	gVert      float64 // die cell → spreader cell
	gSink      float64 // spreader cell → sink
	ambientG   float64

	pool *par.Pool // optional row-partitioning pool (see SetPool)
}

// SetPool hands the lattice a worker pool: die and spreader sweeps
// row-partition across it when the lattice clears parRowThreshold cells.
// The sink-node reduction and the serial sum order inside each cell are
// unchanged, so temperatures are bit-identical at any worker count.
func (g *GridModel) SetPool(p *par.Pool) { g.pool = p }

// NewGridModel rasterises the chip onto an nx×ny lattice.
func NewGridModel(chip *floorplan.Chip, cfg Config, nx, ny int) (*GridModel, error) {
	if chip == nil {
		return nil, errors.New("thermal: nil chip")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("thermal: grid %dx%d too small", nx, ny)
	}
	g := &GridModel{
		chip: chip,
		cfg:  cfg,
		nx:   nx, ny: ny,
		cw: chip.WidthMM / float64(nx),
		ch: chip.HeightMM / float64(ny),
	}
	g.n = nx * ny
	g.sink = 2 * g.n
	g.cellBlock = make([]int, g.n)
	g.power = make([]float64, 2*g.n+1)
	g.temp = make([]float64, 2*g.n+1)

	for idx := 0; idx < g.n; idx++ {
		p := g.cellCenter(idx)
		b := chip.BlockAt(p)
		if b == nil {
			b = chip.NearestBlock(p)
		}
		g.cellBlock[idx] = b.ID
	}

	// Conductances from the same physical constants as the compact model.
	// Lateral: k·t·(cross-section)/(distance); for square-ish cells the
	// cross-section is the shared cell edge. Use the geometric mean so
	// x/y conduction is uniform on mildly anisotropic cells.
	gx := cfg.KSiWPerMMK * cfg.DieThicknessMM * g.ch / g.cw
	gy := cfg.KSiWPerMMK * cfg.DieThicknessMM * g.cw / g.ch
	latDie := math.Sqrt(gx * gy)
	gx = cfg.KCuWPerMMK * cfg.SpreaderThicknessMM * g.ch / g.cw
	gy = cfg.KCuWPerMMK * cfg.SpreaderThicknessMM * g.cw / g.ch
	latSpread := math.Sqrt(gx * gy)
	if math.IsNaN(latDie) || math.IsNaN(latSpread) {
		return nil, fmt.Errorf("thermal: grid conductances are NaN (negative conductivity or thickness in config)")
	}
	g.gLatDie, g.gLatSpread = latDie, latSpread

	cellArea := g.cw * g.ch
	g.gVert = cfg.GVertWPerKmm2 * cellArea
	g.gSink = cfg.GSpreaderSinkWPerKmm2 * cellArea
	g.ambientG = 1 / cfg.SinkResKPerW
	if !(g.gVert > 0) || !(g.gSink > 0) || !(g.ambientG > 0) {
		// The steady-state relaxation divides by conductance sums that
		// are only guaranteed positive when these three are.
		return nil, fmt.Errorf("thermal: non-positive grid conductances (gVert=%v gSink=%v ambientG=%v)",
			g.gVert, g.gSink, g.ambientG)
	}

	g.Reset(cfg.AmbientC)
	return g, nil
}

// Size returns the lattice dimensions.
func (g *GridModel) Size() (nx, ny int) { return g.nx, g.ny }

func (g *GridModel) cellCenter(idx int) floorplan.Point {
	ix := idx % g.nx
	iy := idx / g.nx
	return floorplan.Point{
		X: (float64(ix) + 0.5) * g.cw,
		Y: (float64(iy) + 0.5) * g.ch,
	}
}

// Reset sets every node to the given temperature.
func (g *GridModel) Reset(tempC float64) {
	for i := range g.temp {
		g.temp[i] = tempC
	}
}

// Step advances the transient solution by dtS seconds with substepped
// explicit Euler, mirroring the compact model's integrator at grid
// resolution.
func (g *GridModel) Step(dtS float64) error {
	if dtS <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dtS)
	}
	cellArea := g.cw * g.ch
	cDie := g.cfg.CSiJPerMM3K * cellArea * g.cfg.DieThicknessMM
	cSp := g.cfg.CCuJPerMM3K * cellArea * g.cfg.SpreaderThicknessMM
	if !(cDie > 0) || !(cSp > 0) {
		return fmt.Errorf("thermal: non-positive cell heat capacity (cDie=%v cSp=%v)", cDie, cSp)
	}
	// Stability: the fastest node rate bounds the substep.
	dieRate := (4*g.gLatDie + g.gVert) / cDie
	spRate := (4*g.gLatSpread + g.gVert + g.gSink) / cSp
	maxRate := math.Max(dieRate, spRate)
	sub := math.Min(g.cfg.MaxEulerStepS, 0.5/maxRate)
	if !(maxRate > 0) || !(sub > 0) {
		// maxRate = +Inf (zero capacity) or MaxEulerStepS ≤ 0 would make
		// the substep count meaningless.
		return fmt.Errorf("thermal: degenerate substep %v (maxRate=%v)", sub, maxRate)
	}
	steps := int(math.Ceil(dtS / sub))
	h := dtS / float64(steps)
	if invariant.Enabled {
		invariant.CheckStability("thermal.GridModel substep", h, maxRate)
	}

	if g.delta == nil {
		g.delta = make([]float64, len(g.temp))
	}
	pool := g.pool
	if g.n < parRowThreshold {
		pool = nil // inline: barrier cost would dominate a small lattice
	}
	for s := 0; s < steps; s++ {
		// Die layer.
		pool.For(g.n, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				ix := idx % g.nx
				iy := idx / g.nx
				q := g.power[idx] + g.gVert*(g.temp[g.n+idx]-g.temp[idx])
				if ix > 0 {
					q += g.gLatDie * (g.temp[idx-1] - g.temp[idx])
				}
				if ix < g.nx-1 {
					q += g.gLatDie * (g.temp[idx+1] - g.temp[idx])
				}
				if iy > 0 {
					q += g.gLatDie * (g.temp[idx-g.nx] - g.temp[idx])
				}
				if iy < g.ny-1 {
					q += g.gLatDie * (g.temp[idx+g.nx] - g.temp[idx])
				}
				g.delta[idx] = h * q / cDie
			}
		})
		// Spreader layer.
		pool.For(g.n, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				sp := g.n + idx
				ix := idx % g.nx
				iy := idx / g.nx
				q := g.gVert*(g.temp[idx]-g.temp[sp]) + g.gSink*(g.temp[g.sink]-g.temp[sp])
				if ix > 0 {
					q += g.gLatSpread * (g.temp[sp-1] - g.temp[sp])
				}
				if ix < g.nx-1 {
					q += g.gLatSpread * (g.temp[sp+1] - g.temp[sp])
				}
				if iy > 0 {
					q += g.gLatSpread * (g.temp[sp-g.nx] - g.temp[sp])
				}
				if iy < g.ny-1 {
					q += g.gLatSpread * (g.temp[sp+g.nx] - g.temp[sp])
				}
				g.delta[sp] = h * q / cSp
			}
		})
		// Sink node: a whole-lattice reduction, kept serial in spreader
		// index order so its sum is bit-identical at any pool width.
		{
			q := g.ambientG * (g.cfg.AmbientC - g.temp[g.sink])
			for idx := 0; idx < g.n; idx++ {
				q += g.gSink * (g.temp[g.n+idx] - g.temp[g.sink])
			}
			g.delta[g.sink] = h * q / g.cfg.SinkCapJPerK
		}
		pool.For(len(g.temp), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g.temp[i] += g.delta[i]
			}
		})
	}
	if invariant.Enabled {
		invariant.CheckTempBounds("thermal.GridModel.temp", g.temp, g.cfg.AmbientC, math.Inf(1))
	}
	return nil
}

// SetPower distributes the block power map over the die cells (area
// shares) and injects each regulator's loss into the cell containing it.
func (g *GridModel) SetPower(blockPower, vrPower []float64) error {
	if err := validatePowers(blockPower, vrPower, len(g.chip.Blocks), len(g.chip.Regulators)); err != nil {
		return err
	}
	// Count cells per block for even distribution.
	cells := make([]int, len(g.chip.Blocks))
	for _, bid := range g.cellBlock {
		cells[bid]++
	}
	for i := range g.power {
		g.power[i] = 0
	}
	for idx, bid := range g.cellBlock {
		if cells[bid] > 0 {
			g.power[idx] = blockPower[bid] / float64(cells[bid])
		}
	}
	for ri, reg := range g.chip.Regulators {
		ix := int(reg.Pos.X / g.cw)
		iy := int(reg.Pos.Y / g.ch)
		if ix < 0 {
			ix = 0
		}
		if ix >= g.nx {
			ix = g.nx - 1
		}
		if iy < 0 {
			iy = 0
		}
		if iy >= g.ny {
			iy = g.ny - 1
		}
		g.power[iy*g.nx+ix] += vrPower[ri]
	}
	return nil
}

// SteadyState relaxes the lattice to equilibrium with Gauss-Seidel,
// returning the iteration count.
func (g *GridModel) SteadyState(tolC float64, maxIter int) (int, error) {
	if tolC <= 0 {
		return 0, errors.New("thermal: non-positive tolerance")
	}
	if maxIter <= 0 {
		maxIter = 50000
	}
	for it := 1; it <= maxIter; it++ {
		var maxDelta float64
		// Die layer.
		for idx := 0; idx < g.n; idx++ {
			ix := idx % g.nx
			iy := idx / g.nx
			num := g.power[idx] + g.gVert*g.temp[g.n+idx]
			den := g.gVert
			if ix > 0 {
				num += g.gLatDie * g.temp[idx-1]
				den += g.gLatDie
			}
			if ix < g.nx-1 {
				num += g.gLatDie * g.temp[idx+1]
				den += g.gLatDie
			}
			if iy > 0 {
				num += g.gLatDie * g.temp[idx-g.nx]
				den += g.gLatDie
			}
			if iy < g.ny-1 {
				num += g.gLatDie * g.temp[idx+g.nx]
				den += g.gLatDie
			}
			tNew := num / den
			if d := math.Abs(tNew - g.temp[idx]); d > maxDelta {
				maxDelta = d
			}
			//lint:ignore nanflow den >= gVert+gSink > 0, validated in NewGrid
			g.temp[idx] = tNew
		}
		// Spreader layer.
		for idx := 0; idx < g.n; idx++ {
			s := g.n + idx
			ix := idx % g.nx
			iy := idx / g.nx
			num := g.gVert*g.temp[idx] + g.gSink*g.temp[g.sink]
			den := g.gVert + g.gSink
			if ix > 0 {
				num += g.gLatSpread * g.temp[s-1]
				den += g.gLatSpread
			}
			if ix < g.nx-1 {
				num += g.gLatSpread * g.temp[s+1]
				den += g.gLatSpread
			}
			if iy > 0 {
				num += g.gLatSpread * g.temp[s-g.nx]
				den += g.gLatSpread
			}
			if iy < g.ny-1 {
				num += g.gLatSpread * g.temp[s+g.nx]
				den += g.gLatSpread
			}
			tNew := num / den
			if d := math.Abs(tNew - g.temp[s]); d > maxDelta {
				maxDelta = d
			}
			//lint:ignore nanflow den >= gVert+gSink > 0, validated in NewGrid
			g.temp[s] = tNew
		}
		// Sink node.
		{
			num := g.ambientG * g.cfg.AmbientC
			den := g.ambientG
			for idx := 0; idx < g.n; idx++ {
				num += g.gSink * g.temp[g.n+idx]
				den += g.gSink
			}
			tNew := num / den
			if d := math.Abs(tNew - g.temp[g.sink]); d > maxDelta {
				maxDelta = d
			}
			//lint:ignore nanflow den >= ambientG > 0, validated in NewGrid
			g.temp[g.sink] = tNew
		}
		if maxDelta < tolC {
			if invariant.Enabled {
				invariant.CheckTempBounds("thermal.GridModel.temp", g.temp, g.cfg.AmbientC, math.Inf(1))
			}
			return it, nil
		}
	}
	return maxIter, errors.New("thermal: grid steady state did not converge")
}

// CellTemp returns the die temperature of cell (ix, iy).
func (g *GridModel) CellTemp(ix, iy int) float64 {
	return g.temp[iy*g.nx+ix]
}

// SinkTemp returns the sink node temperature.
func (g *GridModel) SinkTemp() float64 { return g.temp[g.sink] }

// MaxTemp returns the hottest die cell and its position.
func (g *GridModel) MaxTemp() (float64, floorplan.Point) {
	best, at := math.Inf(-1), 0
	for idx := 0; idx < g.n; idx++ {
		if g.temp[idx] > best {
			best, at = g.temp[idx], idx
		}
	}
	return best, g.cellCenter(at)
}

// BlockTemp returns the area-average die temperature of a block.
func (g *GridModel) BlockTemp(block int) float64 {
	var sum float64
	var n int
	for idx, bid := range g.cellBlock {
		if bid == block {
			sum += g.temp[idx]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// HeatMap returns a copy of the die layer as rows of cells.
func (g *GridModel) HeatMap() [][]float64 {
	out := make([][]float64, g.ny)
	for iy := 0; iy < g.ny; iy++ {
		row := make([]float64, g.nx)
		copy(row, g.temp[iy*g.nx:(iy+1)*g.nx])
		out[iy] = row
	}
	return out
}
