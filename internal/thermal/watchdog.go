package thermal

import (
	"fmt"
	"math"

	"thermogater/internal/invariant"
)

// Watchdog wraps a Model's transient step with divergence detection and
// bounded reduced-substep retries. The explicit Euler substep is chosen to
// satisfy the linear-stability (CFL) bound, but a pathological power map —
// injected faults, corrupted inputs — can still push the solution into
// NaN or physically absurd territory within one step. The watchdog
// snapshots the temperature field before each step, validates the result,
// and on failure rolls back and retries with the substep cap halved, up to
// MaxRetries times, before surfacing an error to the caller.
type Watchdog struct {
	// MaxRetries bounds the halving ladder; DefaultMaxRetries when zero.
	MaxRetries int

	m    *Model
	snap []float64
}

// DefaultMaxRetries is the retry budget used when MaxRetries is unset:
// three halvings cut the substep cap 8×, far past any plausible stiffness
// increase a fault can cause.
const DefaultMaxRetries = 3

// NewWatchdog wraps the model. The watchdog owns no thermal state of its
// own — it is safe to construct at any time and drop at any time.
func NewWatchdog(m *Model) *Watchdog { return &Watchdog{m: m} }

// Step advances the model by dtS seconds like Model.Step, retrying at a
// halved substep cap whenever the post-step state fails validation. It
// returns the number of retries consumed (0 on the common healthy path).
// On error the temperature field holds the pre-step snapshot, so the
// caller sees a consistent (if stale) state.
func (w *Watchdog) Step(dtS float64) (retries int, err error) {
	maxRetries := w.MaxRetries
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	if w.snap == nil {
		w.snap = make([]float64, w.m.nNodes)
	}
	copy(w.snap, w.m.temp)
	capS := w.m.cfg.MaxEulerStepS
	for attempt := 0; ; attempt++ {
		stepErr := w.m.stepCapped(dtS, capS)
		if stepErr == nil && w.healthy() {
			if invariant.Enabled {
				invariant.CheckTempBounds("thermal.Watchdog.temp", w.m.temp, w.m.cfg.AmbientC, math.Inf(1))
			}
			return attempt, nil
		}
		copy(w.m.temp, w.snap)
		if attempt >= maxRetries {
			if stepErr == nil {
				stepErr = fmt.Errorf("thermal: watchdog: step of %v s diverged after %d reduced-substep retries", dtS, attempt)
			}
			return attempt, stepErr
		}
		capS /= 2
	}
}

// healthy validates the post-step temperature field: every node finite,
// and the on-die nodes (blocks and regulators) within a generous physical
// envelope — one degree below ambient up to 50°C past the junction limit.
// The envelope is deliberately looser than the tgsan bounds: the watchdog
// catches solver divergence, not policy failures.
func (w *Watchdog) healthy() bool {
	lo := w.m.cfg.AmbientC - 1
	hi := w.m.cfg.MaxJunction() + 50
	for i, t := range w.m.temp {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return false
		}
		if i < w.m.nBlocks+w.m.nVRs && (t < lo || t > hi) {
			return false
		}
	}
	return true
}
