// Package thermal models the chip's temperature field as a compact RC
// network, standing in for HotSpot 6.0 in the paper's toolchain. One
// capacitive node per functional block, one per on-chip regulator, one
// spreader node per block projection and one heat-sink node reproduce the
// structure of HotSpot's block-mode model: lateral silicon conduction
// between adjacent blocks, vertical conduction through die and thermal
// interface into the copper spreader, spreading in the copper, and a lumped
// sink-to-ambient path calibrated to a POWER7+-class air cooling package.
// Transient integration uses explicit substepped Euler; steady state uses
// Gauss-Seidel relaxation. The regulator nodes are deliberately tiny
// (0.04mm² footprint) so their thermal time constant lands near the 1ms
// gating decision period, which is exactly the regime Fig. 8 shows.
package thermal

import "math"

// Config collects the physical constants of the package model. All lengths
// are millimetres, conductances W/K, capacitances J/K, temperatures °C.
type Config struct {
	// AmbientC is the cooling air temperature.
	AmbientC float64
	// DieThicknessMM is the silicon die thickness.
	DieThicknessMM float64
	// KSiWPerMMK is silicon thermal conductivity (W/(mm·K)).
	KSiWPerMMK float64
	// CSiJPerMM3K is silicon volumetric heat capacity (J/(mm³·K)).
	CSiJPerMM3K float64
	// GVertWPerKmm2 is the per-area vertical conductance from die node to
	// spreader node (die half-thickness + thermal interface material).
	GVertWPerKmm2 float64
	// SpreaderThicknessMM and KCuWPerMMK describe the copper spreader.
	SpreaderThicknessMM float64
	KCuWPerMMK          float64
	// CCuJPerMM3K is copper volumetric heat capacity.
	CCuJPerMM3K float64
	// GSpreaderSinkWPerKmm2 couples each spreader node to the sink node.
	GSpreaderSinkWPerKmm2 float64
	// SinkResKPerW is the lumped sink-to-ambient resistance; ≈0.22 K/W
	// mimics the POWER7+ air-cooled package HotSpot defaults to.
	SinkResKPerW float64
	// SinkCapJPerK is the sink thermal mass.
	SinkCapJPerK float64
	// GRegulatorWPerK couples each regulator node to its host block: the
	// lateral spreading of the tiny VR footprint into surrounding silicon.
	// This constant sets how sharply a regulator heats above its
	// neighbourhood and is the paper's central thermal mechanism.
	GRegulatorWPerK float64
	// RegulatorCapJPerK is the regulator node heat capacity; together with
	// GRegulatorWPerK it sets the VR thermal time constant (≈1.2ms, so a
	// regulator's temperature visibly swings across 1ms gating decisions
	// as in Fig. 8 — the transient regime in which predictive gating
	// genuinely beats both the greedy Naïve policy and all-on).
	RegulatorCapJPerK float64
	// MaxEulerStepS caps the internal integration substep.
	MaxEulerStepS float64
	// MaxJunctionC is the maximum junction temperature the tgsan sanitizer
	// enforces on block and regulator nodes. Zero selects the default
	// DefaultMaxJunctionC; read it through MaxJunction.
	MaxJunctionC float64
}

// DefaultMaxJunctionC is the junction limit assumed when Config leaves
// MaxJunctionC unset — comfortably above the ~85°C operating points the
// paper's experiments reach, so only genuinely runaway physics trips it.
const DefaultMaxJunctionC = 150.0

// MaxJunction returns the junction temperature limit (°C), substituting
// DefaultMaxJunctionC when the field is unset.
func (c Config) MaxJunction() float64 {
	if c.MaxJunctionC <= 0 {
		return DefaultMaxJunctionC
	}
	return c.MaxJunctionC
}

// DefaultConfig returns the calibrated POWER7+-like package.
func DefaultConfig() Config {
	return Config{
		AmbientC:              35.0,
		DieThicknessMM:        0.5,
		KSiWPerMMK:            0.11,
		CSiJPerMM3K:           1.75e-3,
		GVertWPerKmm2:         0.11,
		SpreaderThicknessMM:   2.0,
		KCuWPerMMK:            0.40,
		CCuJPerMM3K:           3.45e-3,
		GSpreaderSinkWPerKmm2: 0.15,
		SinkResKPerW:          0.22,
		SinkCapJPerK:          140,
		GRegulatorWPerK:       0.022,
		RegulatorCapJPerK:     2.64e-5,
		MaxEulerStepS:         2e-4,
	}
}

// Validate rejects configurations that would break the solver.
func (c Config) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"DieThicknessMM", c.DieThicknessMM},
		{"KSiWPerMMK", c.KSiWPerMMK},
		{"CSiJPerMM3K", c.CSiJPerMM3K},
		{"GVertWPerKmm2", c.GVertWPerKmm2},
		{"SpreaderThicknessMM", c.SpreaderThicknessMM},
		{"KCuWPerMMK", c.KCuWPerMMK},
		{"CCuJPerMM3K", c.CCuJPerMM3K},
		{"GSpreaderSinkWPerKmm2", c.GSpreaderSinkWPerKmm2},
		{"SinkResKPerW", c.SinkResKPerW},
		{"SinkCapJPerK", c.SinkCapJPerK},
		{"GRegulatorWPerK", c.GRegulatorWPerK},
		{"RegulatorCapJPerK", c.RegulatorCapJPerK},
		{"MaxEulerStepS", c.MaxEulerStepS},
	}
	for _, p := range pos {
		// !(v > 0) rather than v <= 0 so NaN — every comparison false —
		// is rejected instead of slipping into the solver.
		if !(p.v > 0) || math.IsInf(p.v, 1) {
			return &ConfigError{Field: p.name, Value: p.v}
		}
	}
	if math.IsNaN(c.AmbientC) || math.IsInf(c.AmbientC, 0) {
		return &ConfigError{Field: "AmbientC", Value: c.AmbientC}
	}
	if math.IsNaN(c.MaxJunctionC) || math.IsInf(c.MaxJunctionC, 0) {
		return &ConfigError{Field: "MaxJunctionC", Value: c.MaxJunctionC}
	}
	return nil
}

// ConfigError reports a physical constant that is not positive and finite
// (or, for the temperature fields, not finite).
type ConfigError struct {
	Field string
	Value float64
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return "thermal: config field " + e.Field + " must be finite (and positive where physical)"
}
