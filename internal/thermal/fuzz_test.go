package thermal

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/workload"
)

// FuzzThermalStep drives the RC model with randomized power maps and step
// sizes inside the physical envelope (total dynamic power within the 150W
// TDP, per-VR conversion loss under 0.5W, ambient in a data-center range).
// Run it with -tags tgsan so the sanitizer acts as the oracle: CFL
// stability, ambient floor and NaN sweeps panic on the first violation. In
// the default build the explicit finiteness assertions below still hold.
func FuzzThermalStep(f *testing.F) {
	f.Add(uint64(1), 60.0, 0.25, 1.0, 4, 35.0)
	f.Add(uint64(7), 150.0, 0.5, 5.0, 2, 45.0)
	f.Add(uint64(42), 1.0, 0.0, 0.1, 8, 20.0)
	f.Fuzz(func(t *testing.T, seed uint64, totalW, vrW, dtMS float64, steps int, ambientC float64) {
		// Clamp to the physical envelope; absurd inputs are out of contract.
		if math.IsNaN(totalW) || totalW <= 0 || totalW > 150 {
			t.Skip("total power outside (0, 150W] TDP envelope")
		}
		if math.IsNaN(vrW) || vrW < 0 || vrW > 0.5 {
			t.Skip("per-VR loss outside [0, 0.5W] envelope")
		}
		if math.IsNaN(dtMS) || dtMS <= 0 || dtMS > 5 {
			t.Skip("step outside (0, 5ms] envelope")
		}
		if steps <= 0 || steps > 8 {
			t.Skip("step count outside (0, 8] envelope")
		}
		if math.IsNaN(ambientC) || ambientC < 15 || ambientC > 55 {
			t.Skip("ambient outside [15, 55]°C envelope")
		}

		chip := floorplan.MustPOWER8()
		cfg := DefaultConfig()
		cfg.AmbientC = ambientC
		m, err := NewModel(chip, cfg)
		if err != nil {
			t.Fatalf("NewModel: %v", err)
		}

		// Random non-negative power map normalized to totalW, plus a random
		// per-VR loss in [0, vrW].
		rng := workload.NewRNG(seed)
		blockPower := make([]float64, len(chip.Blocks))
		var sum float64
		for i := range blockPower {
			blockPower[i] = rng.Float64()
			sum += blockPower[i]
		}
		for i := range blockPower {
			blockPower[i] *= totalW / sum
		}
		vrPower := make([]float64, len(chip.Regulators))
		for i := range vrPower {
			vrPower[i] = rng.Float64() * vrW
		}
		if err := m.SetPower(blockPower, vrPower); err != nil {
			t.Fatalf("SetPower: %v", err)
		}

		for s := 0; s < steps; s++ {
			if err := m.Step(dtMS * 1e-3); err != nil {
				t.Fatalf("Step %d: %v", s, err)
			}
		}
		max, at := m.MaxTemp()
		if math.IsNaN(max) || math.IsInf(max, 0) {
			t.Fatalf("MaxTemp = %v at %s after %d steps", max, at, steps)
		}
		if max < ambientC-0.1 {
			t.Fatalf("MaxTemp %v°C below ambient %v°C", max, ambientC)
		}
	})
}
