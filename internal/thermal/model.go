package thermal

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
	"thermogater/internal/invariant"
	"thermogater/internal/par"
)

// edge is one conductive link of the RC network.
type edge struct {
	to int
	g  float64 // W/K
}

// Model is the compact RC thermal network for one chip.
type Model struct {
	chip *floorplan.Chip
	cfg  Config

	nBlocks int
	nVRs    int
	// Node layout: [0, nBlocks) block die nodes, [nBlocks, nBlocks+nVRs)
	// regulator nodes, then one spreader node per block, then the sink.
	nNodes  int
	sink    int
	spread0 int
	vrNames []string // "vr<r>@<nearest block>", prebuilt so MaxTemp never formats

	adj      [][]edge
	capJPerK []float64
	ambientG []float64 // conductance to fixed ambient (sink only)
	power    []float64 // W injected per node
	temp     []float64 // °C

	sumG    []float64 // cached Σg per node (incl. ambient), for stability + steady state
	maxRate float64   // max over nodes of ΣG/C, 1/s
	delta   []float64 // scratch buffer for Step

	// Prebuilt sweep workers for stepCapped. Building them once in
	// NewModel keeps the per-substep fan-out allocation-free; they read
	// the substep size from stepH (set by stepCapped before each pass)
	// and the scratch buffer from delta at call time.
	stepH   float64
	rowsFn  func(lo, hi int)
	applyFn func(lo, hi int)

	// CSR flattening of adj, rebuilt by cacheRates: the neighbours of
	// node i are flatTo[rowStart[i]:rowStart[i+1]] with conductances
	// flatG at the same offsets, in adj order — so the flat sweep in
	// stepCapped sums in exactly the order the nested loop did and the
	// temperatures stay bit-identical.
	rowStart []int32
	flatTo   []int32
	flatG    []float64

	pool *par.Pool // optional row-partitioning pool (see SetPool)

	substeps int64 // cumulative internal Euler substeps across all Step calls
}

// parRowThreshold is the node count below which stepCapped ignores the
// pool: the compact model's ~200 nodes finish in well under the cost of
// waking workers, so only fine-grid models (GridModel) fan out.
const parRowThreshold = 2048

// NewModel builds the RC network for the chip, initialised to the ambient
// temperature with zero power.
func NewModel(chip *floorplan.Chip, cfg Config) (*Model, error) {
	if chip == nil {
		return nil, errors.New("thermal: nil chip")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		chip:    chip,
		cfg:     cfg,
		nBlocks: len(chip.Blocks),
		nVRs:    len(chip.Regulators),
	}
	m.spread0 = m.nBlocks + m.nVRs
	m.sink = m.spread0 + m.nBlocks
	m.nNodes = m.sink + 1
	m.vrNames = make([]string, m.nVRs)
	for r := 0; r < m.nVRs; r++ {
		m.vrNames[r] = fmt.Sprintf("vr%d@%s", r, chip.Blocks[chip.Regulators[r].NearestBlock].Name)
	}

	m.adj = make([][]edge, m.nNodes)
	m.capJPerK = make([]float64, m.nNodes)
	m.ambientG = make([]float64, m.nNodes)
	m.power = make([]float64, m.nNodes)
	m.temp = make([]float64, m.nNodes)

	// The stepCapped sweep workers, built once so per-substep fan-outs
	// hand the pool an existing closure instead of allocating one. They
	// load delta and stepH through m because both change after this
	// point (delta is lazily sized, stepH per stepCapped call).
	m.rowsFn = func(lo, hi int) {
		delta, h := m.delta, m.stepH
		for i := lo; i < hi; i++ {
			q := m.power[i]
			ti := m.temp[i]
			for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
				q += m.flatG[k] * (m.temp[m.flatTo[k]] - ti)
			}
			if m.ambientG[i] > 0 {
				q += m.ambientG[i] * (m.cfg.AmbientC - ti)
			}
			delta[i] = h * q / m.capJPerK[i]
		}
	}
	m.applyFn = func(lo, hi int) {
		delta := m.delta
		for i := lo; i < hi; i++ {
			m.temp[i] += delta[i]
		}
	}

	// Node capacitances.
	for i, b := range chip.Blocks {
		m.capJPerK[i] = cfg.CSiJPerMM3K * b.R.Area() * cfg.DieThicknessMM
		m.capJPerK[m.spread0+i] = cfg.CCuJPerMM3K * b.R.Area() * cfg.SpreaderThicknessMM
	}
	for r := range chip.Regulators {
		m.capJPerK[m.nBlocks+r] = cfg.RegulatorCapJPerK
	}
	m.capJPerK[m.sink] = cfg.SinkCapJPerK

	// Lateral silicon conduction between adjacent blocks.
	for i := 0; i < m.nBlocks; i++ {
		for j := i + 1; j < m.nBlocks; j++ {
			bi, bj := chip.Blocks[i].R, chip.Blocks[j].R
			shared := bi.SharedEdge(bj)
			if shared <= 0 {
				continue
			}
			dist := bi.Center().DistanceTo(bj.Center())
			if !(dist > 0) {
				return nil, fmt.Errorf("thermal: blocks %d and %d have coincident centers", i, j)
			}
			g := cfg.KSiWPerMMK * cfg.DieThicknessMM * shared / dist
			m.link(i, j, g)
		}
	}
	// Vertical block→spreader, spreader→sink.
	for i, b := range chip.Blocks {
		m.link(i, m.spread0+i, cfg.GVertWPerKmm2*b.R.Area())
		m.link(m.spread0+i, m.sink, cfg.GSpreaderSinkWPerKmm2*b.R.Area())
	}
	// Lateral copper spreading between adjacent spreader nodes.
	for i := 0; i < m.nBlocks; i++ {
		for j := i + 1; j < m.nBlocks; j++ {
			bi, bj := chip.Blocks[i].R, chip.Blocks[j].R
			shared := bi.SharedEdge(bj)
			if shared <= 0 {
				continue
			}
			dist := bi.Center().DistanceTo(bj.Center())
			if !(dist > 0) {
				return nil, fmt.Errorf("thermal: blocks %d and %d have coincident centers", i, j)
			}
			g := cfg.KCuWPerMMK * cfg.SpreaderThicknessMM * shared / dist
			m.link(m.spread0+i, m.spread0+j, g)
		}
	}
	// Regulator nodes couple to their host block.
	for r, reg := range chip.Regulators {
		host := reg.NearestBlock
		if host < 0 {
			return nil, fmt.Errorf("thermal: regulator %d has no host block", r)
		}
		m.link(m.nBlocks+r, host, cfg.GRegulatorWPerK)
	}
	// Sink to ambient.
	m.ambientG[m.sink] = 1 / cfg.SinkResKPerW

	m.cacheRates()
	m.Reset(cfg.AmbientC)
	return m, nil
}

func (m *Model) link(i, j int, g float64) {
	m.adj[i] = append(m.adj[i], edge{to: j, g: g})
	m.adj[j] = append(m.adj[j], edge{to: i, g: g})
}

// cacheRates precomputes everything the transient sweep needs that does
// not change between substeps, hotspot3D-style: the per-node conductance
// sums and stability rate, and the CSR (flat structure-of-arrays) form
// of the adjacency so stepCapped touches three dense arrays instead of
// chasing per-node edge slices.
func (m *Model) cacheRates() {
	m.sumG = make([]float64, m.nNodes)
	m.maxRate = 0
	nEdges := 0
	for i := range m.adj {
		var s float64
		for _, e := range m.adj[i] {
			s += e.g
		}
		s += m.ambientG[i]
		m.sumG[i] = s
		if r := s / m.capJPerK[i]; r > m.maxRate {
			m.maxRate = r
		}
		nEdges += len(m.adj[i])
	}
	m.rowStart = make([]int32, m.nNodes+1)
	m.flatTo = make([]int32, nEdges)
	m.flatG = make([]float64, nEdges)
	k := 0
	for i := range m.adj {
		m.rowStart[i] = int32(k)
		for _, e := range m.adj[i] {
			m.flatTo[k] = int32(e.to)
			m.flatG[k] = e.g
			k++
		}
	}
	m.rowStart[m.nNodes] = int32(k)
}

// SetPool hands the model a worker pool for row-partitioned substeps.
// Only models above parRowThreshold nodes use it; the compact network
// stays serial either way, so temperatures are identical at any width.
// A nil pool (or nil receiver use) reverts to inline execution.
func (m *Model) SetPool(p *par.Pool) { m.pool = p }

// Chip returns the floorplan the model was built from.
func (m *Model) Chip() *floorplan.Chip { return m.chip }

// Config returns the package configuration.
func (m *Model) Config() Config { return m.cfg }

// Reset sets every node to the given temperature.
func (m *Model) Reset(tempC float64) {
	for i := range m.temp {
		m.temp[i] = tempC
	}
}

// SetPower installs the heat inputs for the next integration interval:
// blockPower holds total (dynamic + static) watts per functional block,
// vrPower the conversion loss of each regulator (zero for gated ones).
func (m *Model) SetPower(blockPower, vrPower []float64) error {
	if err := validatePowers(blockPower, vrPower, m.nBlocks, m.nVRs); err != nil {
		return err
	}
	copy(m.power, blockPower)
	copy(m.power[m.nBlocks:], vrPower)
	return nil
}

// Step advances the transient solution by dtS seconds using explicit Euler
// with internal substepping chosen for stability.
func (m *Model) Step(dtS float64) error {
	if err := m.stepCapped(dtS, m.cfg.MaxEulerStepS); err != nil {
		return err
	}
	if invariant.Enabled {
		invariant.CheckTempBounds("thermal.Model.temp", m.temp, m.cfg.AmbientC, math.Inf(1))
	}
	return nil
}

// stepCapped is Step with an explicit substep cap and without the post-step
// invariant sweep, so the watchdog can retry a diverged attempt at a reduced
// cap before the sanitizer sees (and panics on) the transient garbage.
func (m *Model) stepCapped(dtS, capS float64) error {
	if dtS <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dtS)
	}
	if !(capS > 0) {
		return fmt.Errorf("thermal: non-positive substep cap %v", capS)
	}
	// Stability: substep ≤ min(cap, 0.5/maxRate).
	sub := math.Min(capS, 0.5/m.maxRate)
	if !(sub > 0) {
		// maxRate = +Inf (a zero heat capacity slipped through) would
		// zero the substep and overflow the step count.
		return fmt.Errorf("thermal: degenerate substep %v (maxRate=%v)", sub, m.maxRate)
	}
	steps := int(math.Ceil(dtS / sub))
	h := dtS / float64(steps)
	m.substeps += int64(steps)
	if invariant.Enabled {
		invariant.CheckStability("thermal.Model substep", h, m.maxRate)
	}
	if m.delta == nil {
		m.delta = make([]float64, m.nNodes)
	}
	// Flat SoA sweep over the CSR arrays built by cacheRates. Each row i
	// reads the whole temperature field but writes only delta[i], so the
	// sweep row-partitions across the pool; the in-place temperature
	// update runs after the full delta pass (two barriers per substep),
	// keeping the arithmetic — and hence the trajectory — bit-identical
	// to the serial loop at any worker count. The workers themselves are
	// prebuilt in NewModel; only the substep size changes per call.
	m.stepH = h
	pool := m.pool
	if m.nNodes < parRowThreshold {
		pool = nil // inline: barrier cost would dominate the compact model
	}
	for s := 0; s < steps; s++ {
		pool.For(m.nNodes, m.rowsFn)
		pool.For(m.nNodes, m.applyFn)
	}
	return nil
}

// State is a deep snapshot of the model's mutable fields; see
// Model.State/Restore and the checkpoint format in docs/ROBUSTNESS.md.
type State struct {
	Temp     []float64
	Power    []float64
	Substeps int64
}

// State captures the temperature field, installed power map and the
// cumulative substep counter. The returned value shares nothing with the
// model.
func (m *Model) State() *State {
	return &State{
		Temp:     append([]float64(nil), m.temp...),
		Power:    append([]float64(nil), m.power...),
		Substeps: m.substeps,
	}
}

// Restore loads a snapshot previously taken by State. The model must have
// been built for the same chip; shape mismatches are rejected.
func (m *Model) Restore(s *State) error {
	if s == nil {
		return errors.New("thermal: nil state")
	}
	if len(s.Temp) != m.nNodes || len(s.Power) != m.nNodes {
		return fmt.Errorf("thermal: state sized for %d nodes, model has %d", len(s.Temp), m.nNodes)
	}
	if s.Substeps < 0 {
		return errors.New("thermal: negative substep counter")
	}
	for i, t := range s.Temp {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("thermal: state temperature %d = %v not finite", i, t)
		}
	}
	copy(m.temp, s.Temp)
	copy(m.power, s.Power)
	m.substeps = s.Substeps
	return nil
}

// SteadyState relaxes the network to its equilibrium for the currently
// installed power map, using Gauss-Seidel iteration to the given absolute
// tolerance (°C). It returns the iteration count used.
func (m *Model) SteadyState(tolC float64, maxIter int) (int, error) {
	if tolC <= 0 {
		return 0, errors.New("thermal: non-positive tolerance")
	}
	if maxIter <= 0 {
		maxIter = 20000
	}
	for it := 1; it <= maxIter; it++ {
		var maxDelta float64
		for i := 0; i < m.nNodes; i++ {
			num := m.power[i] + m.ambientG[i]*m.cfg.AmbientC
			for _, e := range m.adj[i] {
				num += e.g * m.temp[e.to]
			}
			tNew := num / m.sumG[i]
			if d := math.Abs(tNew - m.temp[i]); d > maxDelta {
				maxDelta = d
			}
			m.temp[i] = tNew
		}
		if maxDelta < tolC {
			if invariant.Enabled {
				invariant.CheckTempBounds("thermal.Model.temp", m.temp, m.cfg.AmbientC, math.Inf(1))
			}
			return it, nil
		}
	}
	return maxIter, errors.New("thermal: steady state did not converge")
}

// Substeps returns the cumulative number of internal Euler substeps taken
// by Step since construction — the solver-cost counter telemetry reports
// per epoch.
func (m *Model) Substeps() int64 { return m.substeps }

// BlockTemp returns the die temperature of the given block.
func (m *Model) BlockTemp(block int) float64 { return m.temp[block] }

// VRTemp returns the temperature of the given regulator node.
func (m *Model) VRTemp(vr int) float64 { return m.temp[m.nBlocks+vr] }

// BlockTemps copies all block temperatures into dst (allocated if nil).
func (m *Model) BlockTemps(dst []float64) []float64 {
	if dst == nil || len(dst) != m.nBlocks {
		dst = make([]float64, m.nBlocks)
	}
	copy(dst, m.temp[:m.nBlocks])
	return dst
}

// VRTemps copies all regulator temperatures into dst (allocated if nil).
func (m *Model) VRTemps(dst []float64) []float64 {
	if dst == nil || len(dst) != m.nVRs {
		dst = make([]float64, m.nVRs)
	}
	copy(dst, m.temp[m.nBlocks:m.nBlocks+m.nVRs])
	return dst
}

// SinkTemp returns the heat-sink node temperature.
func (m *Model) SinkTemp() float64 { return m.temp[m.sink] }

// MaxTemp returns the hottest on-die temperature (over blocks and
// regulator nodes) and a description of where it occurs.
func (m *Model) MaxTemp() (float64, string) {
	best, where := math.Inf(-1), ""
	for i := 0; i < m.nBlocks; i++ {
		if m.temp[i] > best {
			best, where = m.temp[i], m.chip.Blocks[i].Name
		}
	}
	for r := 0; r < m.nVRs; r++ {
		if t := m.temp[m.nBlocks+r]; t > best {
			best = t
			where = m.vrNames[r]
		}
	}
	return best, where
}

// Gradient returns the maximum spatial temperature difference across the
// die (blocks and regulator nodes), the metric Fig. 10 reports.
func (m *Model) Gradient() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.nBlocks+m.nVRs; i++ {
		t := m.temp[i]
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// HeatMap rasterises the die temperature field onto an nx×ny grid for the
// Fig. 12 heat-map frames: each cell takes the temperature of the block
// under its centre, and cells containing a regulator take the regulator
// node temperature when hotter.
func (m *Model) HeatMap(nx, ny int) ([][]float64, error) {
	if nx < 1 || ny < 1 {
		return nil, errors.New("thermal: heat map needs positive dimensions")
	}
	grid := make([][]float64, ny)
	cw := m.chip.WidthMM / float64(nx)
	ch := m.chip.HeightMM / float64(ny)
	for y := 0; y < ny; y++ {
		grid[y] = make([]float64, nx)
		for x := 0; x < nx; x++ {
			p := floorplan.Point{X: (float64(x) + 0.5) * cw, Y: (float64(y) + 0.5) * ch}
			b := m.chip.BlockAt(p)
			if b == nil {
				b = m.chip.NearestBlock(p)
			}
			grid[y][x] = m.temp[b.ID]
		}
	}
	for r, reg := range m.chip.Regulators {
		x := int(reg.Pos.X / cw)
		y := int(reg.Pos.Y / ch)
		if x >= 0 && x < nx && y >= 0 && y < ny {
			if t := m.temp[m.nBlocks+r]; t > grid[y][x] {
				grid[y][x] = t
			}
		}
	}
	return grid, nil
}
