package thermal

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func watchdogModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(floorplan.MustPOWER8(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWatchdogHealthyPath pins that a well-posed step consumes zero
// retries and matches a plain Model.Step bit-for-bit.
func TestWatchdogHealthyPath(t *testing.T) {
	a, b := watchdogModel(t), watchdogModel(t)
	bp := make([]float64, len(a.Chip().Blocks))
	vp := make([]float64, len(a.Chip().Regulators))
	for i := range bp {
		bp[i] = 2.0
	}
	if err := a.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(a)
	for s := 0; s < 20; s++ {
		retries, err := w.Step(1e-4)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if retries != 0 {
			t.Fatalf("step %d: healthy step used %d retries", s, retries)
		}
		if err := b.Step(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	for i := range a.temp {
		//lint:ignore floatcheck the watchdog's accepted path must be the identical float sequence
		if a.temp[i] != b.temp[i] {
			t.Fatalf("node %d: watchdog %v != plain %v", i, a.temp[i], b.temp[i])
		}
	}
}

// TestWatchdogRollsBackOnDivergence injects a pathological power map (an
// enormous heat spike) and checks the watchdog exhausts its retries,
// returns an error, and leaves the pre-step temperatures intact.
func TestWatchdogRollsBackOnDivergence(t *testing.T) {
	m := watchdogModel(t)
	bp := make([]float64, len(m.Chip().Blocks))
	vp := make([]float64, len(m.Chip().Regulators))
	bp[0] = 1e12 // megawatt-scale spike: diverges past any junction limit
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), m.temp...)
	w := NewWatchdog(m)
	retries, err := w.Step(1e-4)
	if err == nil {
		t.Fatal("watchdog accepted a divergent step")
	}
	if retries != DefaultMaxRetries {
		t.Errorf("retries = %d, want %d", retries, DefaultMaxRetries)
	}
	for i := range m.temp {
		//lint:ignore floatcheck rollback must restore the exact pre-step field
		if m.temp[i] != before[i] {
			t.Fatalf("node %d not rolled back: %v != %v", i, m.temp[i], before[i])
		}
	}
}

// TestModelStateRoundTrip pins that Restore reproduces the captured field
// and rejects shape mismatches and non-finite temperatures.
func TestModelStateRoundTrip(t *testing.T) {
	m := watchdogModel(t)
	bp := make([]float64, len(m.Chip().Blocks))
	vp := make([]float64, len(m.Chip().Regulators))
	for i := range bp {
		bp[i] = 1.5
	}
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(5e-4); err != nil {
		t.Fatal(err)
	}
	st := m.State()

	// Diverge the model, then restore and compare the full field.
	if err := m.Step(5e-3); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := range m.temp {
		//lint:ignore floatcheck restore must be exact
		if m.temp[i] != st.Temp[i] {
			t.Fatalf("node %d: %v != %v", i, m.temp[i], st.Temp[i])
		}
	}
	if m.Substeps() != st.Substeps {
		t.Errorf("substeps %d != %d", m.Substeps(), st.Substeps)
	}

	if err := m.Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	if err := m.Restore(&State{Temp: []float64{1}, Power: []float64{1}}); err == nil {
		t.Error("short state accepted")
	}
	bad := m.State()
	bad.Temp[0] = math.NaN()
	if err := m.Restore(bad); err == nil {
		t.Error("NaN temperature accepted")
	}
}
