package thermal

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func newGrid(t *testing.T, nx, ny int) *GridModel {
	t.Helper()
	g, err := NewGridModel(floorplan.MustPOWER8(), DefaultConfig(), nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridModelValidation(t *testing.T) {
	if _, err := NewGridModel(nil, DefaultConfig(), 8, 8); err == nil {
		t.Error("nil chip accepted")
	}
	if _, err := NewGridModel(floorplan.MustPOWER8(), DefaultConfig(), 1, 8); err == nil {
		t.Error("1-wide grid accepted")
	}
	bad := DefaultConfig()
	bad.KSiWPerMMK = 0
	if _, err := NewGridModel(floorplan.MustPOWER8(), bad, 8, 8); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGridZeroPowerAtAmbient(t *testing.T) {
	g := newGrid(t, 16, 16)
	bp := make([]float64, len(floorplan.MustPOWER8().Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	max, _ := g.MaxTemp()
	if math.Abs(max-DefaultConfig().AmbientC) > 1e-6 {
		t.Errorf("unpowered grid at %v°C", max)
	}
}

func TestGridSinkEnergyBalance(t *testing.T) {
	g := newGrid(t, 24, 24)
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	var total float64
	for i := range bp {
		bp[i] = 1.2
		total += 1.2
	}
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig().AmbientC + total*DefaultConfig().SinkResKPerW
	if got := g.SinkTemp(); math.Abs(got-want) > 0.05 {
		t.Errorf("sink temp %v, want %v", got, want)
	}
}

func TestGridSetPowerValidation(t *testing.T) {
	g := newGrid(t, 8, 8)
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	if err := g.SetPower(bp[:2], vp); err == nil {
		t.Error("short block power accepted")
	}
	if err := g.SetPower(bp, vp[:2]); err == nil {
		t.Error("short VR power accepted")
	}
	bp[0] = -1
	if err := g.SetPower(bp, vp); err == nil {
		t.Error("negative power accepted")
	}
	bp[0] = math.NaN()
	if err := g.SetPower(bp, vp); err == nil {
		t.Error("NaN power accepted")
	}
}

func TestGridHotspotUnderPoweredBlock(t *testing.T) {
	g := newGrid(t, 42, 42)
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	exu, _ := chip.BlockByName("core0/EXU")
	bp[exu.ID] = 6
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	_, at := g.MaxTemp()
	if !exu.R.Contains(at) {
		t.Errorf("hotspot at %v outside the powered EXU %v", at, exu.R)
	}
}

// TestGridValidatesCompactModel cross-validates the two solvers: with the
// same power map, block-average temperatures must agree within a couple of
// degrees and the hottest block must be the same.
func TestGridValidatesCompactModel(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cfg := DefaultConfig()
	compact, err := NewModel(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGridModel(chip, cfg, 42, 42)
	if err != nil {
		t.Fatal(err)
	}
	// A realistic heterogeneous power map: hot logic, mild memory.
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	for _, b := range chip.Blocks {
		switch b.Kind {
		case floorplan.Logic:
			bp[b.ID] = 3
		case floorplan.Memory:
			bp[b.ID] = 1.5
		default:
			bp[b.ID] = 1
		}
	}
	for i := range vp {
		vp[i] = 0.1
	}
	if err := compact.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := compact.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	if err := grid.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := grid.SteadyState(1e-5, 0); err != nil {
		t.Fatal(err)
	}

	var worstDiff float64
	hotCompact, hotGrid := -1, -1
	bestC, bestG := math.Inf(-1), math.Inf(-1)
	for i := range chip.Blocks {
		c := compact.BlockTemp(i)
		gv := grid.BlockTemp(i)
		if d := math.Abs(c - gv); d > worstDiff {
			worstDiff = d
		}
		if c > bestC {
			bestC, hotCompact = c, i
		}
		if gv > bestG {
			bestG, hotGrid = gv, i
		}
	}
	if worstDiff > 3.0 {
		t.Errorf("block temperatures diverge by up to %v°C between solvers", worstDiff)
	}
	if chip.Blocks[hotCompact].Kind != chip.Blocks[hotGrid].Kind {
		t.Errorf("hottest blocks differ in kind: compact %s, grid %s",
			chip.Blocks[hotCompact].Name, chip.Blocks[hotGrid].Name)
	}
}

// TestGridResolvesRegulatorHotspot shows what the grid mode adds: a
// powered regulator produces a local peak sharper than its block average.
func TestGridResolvesRegulatorHotspot(t *testing.T) {
	g := newGrid(t, 84, 84)
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	vp[0] = 0.25
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	max, at := g.MaxTemp()
	reg := chip.Regulators[0]
	if at.DistanceTo(reg.Pos) > 0.5 {
		t.Errorf("peak at %v, regulator at %v", at, reg.Pos)
	}
	host := chip.Blocks[reg.NearestBlock]
	avg := g.BlockTemp(host.ID)
	if max <= avg {
		t.Errorf("regulator peak %v not above its block average %v", max, avg)
	}
}

func TestGridHeatMap(t *testing.T) {
	g := newGrid(t, 12, 10)
	hm := g.HeatMap()
	if len(hm) != 10 || len(hm[0]) != 12 {
		t.Fatalf("heat map %dx%d", len(hm), len(hm[0]))
	}
	// Mutating the copy must not touch the model.
	hm[0][0] = 999
	if g.CellTemp(0, 0) == 999 {
		t.Error("HeatMap returned a live reference")
	}
}

func TestGridSteadyStateValidation(t *testing.T) {
	g := newGrid(t, 8, 8)
	if _, err := g.SteadyState(0, 10); err == nil {
		t.Error("zero tolerance accepted")
	}
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	for i := range bp {
		bp[i] = 2
	}
	vp := make([]float64, floorplan.TotalVRs)
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SteadyState(1e-12, 2); err == nil {
		t.Error("impossible budget converged")
	}
}

func TestGridTransientApproachesSteadyState(t *testing.T) {
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	for i := range bp {
		bp[i] = 1.0
	}
	ref := newGrid(t, 16, 16)
	if err := ref.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}

	tr := newGrid(t, 16, 16)
	if err := tr.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	// Integrate long enough for the sink to settle.
	for i := 0; i < 300; i++ {
		if err := tr.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			d := math.Abs(tr.CellTemp(ix, iy) - ref.CellTemp(ix, iy))
			if d > 0.2 {
				t.Fatalf("cell (%d,%d): transient %v vs steady %v", ix, iy,
					tr.CellTemp(ix, iy), ref.CellTemp(ix, iy))
			}
		}
	}
}

func TestGridStepValidation(t *testing.T) {
	g := newGrid(t, 8, 8)
	if err := g.Step(0); err == nil {
		t.Error("zero step accepted")
	}
	if err := g.Step(-1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestGridTransientMonotoneWarmup(t *testing.T) {
	// From a cold uniform start with constant power, the hottest cell's
	// temperature rises monotonically (no overshoot in a passive RC grid).
	g := newGrid(t, 12, 12)
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, floorplan.TotalVRs)
	exu, _ := chip.BlockByName("core0/EXU")
	bp[exu.ID] = 5
	if err := g.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	prev, _ := g.MaxTemp()
	for i := 0; i < 50; i++ {
		if err := g.Step(0.01); err != nil {
			t.Fatal(err)
		}
		cur, _ := g.MaxTemp()
		if cur < prev-1e-9 {
			t.Fatalf("step %d: max temp fell from %v to %v", i, prev, cur)
		}
		prev = cur
	}
	if prev <= DefaultConfig().AmbientC {
		t.Error("powered grid never warmed")
	}
}
