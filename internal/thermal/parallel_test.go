package thermal

import (
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/par"
)

// TestGridStepParallelBitIdentical: the row-partitioned fine-grid sweep
// must reproduce the serial trajectory exactly — not approximately —
// because the determinism suite compares telemetry bytes.
func TestGridStepParallelBitIdentical(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cfg := DefaultConfig()
	build := func() *GridModel {
		g, err := NewGridModel(chip, cfg, 64, 64) // 4096 cells ≥ parRowThreshold
		if err != nil {
			t.Fatal(err)
		}
		bp := make([]float64, len(chip.Blocks))
		vp := make([]float64, len(chip.Regulators))
		for i := range bp {
			bp[i] = 2.0 + 0.1*float64(i)
		}
		for i := range vp {
			vp[i] = 0.2
		}
		if err := g.SetPower(bp, vp); err != nil {
			t.Fatal(err)
		}
		return g
	}

	serial := build()
	pooled := build()
	pool := par.New(4)
	defer pool.Close()
	pooled.SetPool(pool)

	for step := 0; step < 5; step++ {
		if err := serial.Step(1e-3); err != nil {
			t.Fatal(err)
		}
		if err := pooled.Step(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	for i := range serial.temp {
		if serial.temp[i] != pooled.temp[i] {
			t.Fatalf("node %d: serial %v vs pooled %v (bit drift)", i, serial.temp[i], pooled.temp[i])
		}
	}
}

// TestCompactModelIgnoresPoolBelowThreshold: the ~200-node compact model
// must not fan out (barrier cost dominates), and handing it a pool must
// not change a single bit.
func TestCompactModelIgnoresPoolBelowThreshold(t *testing.T) {
	chip := floorplan.MustPOWER8()
	build := func() *Model {
		m, err := NewModel(chip, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		bp := make([]float64, len(chip.Blocks))
		vp := make([]float64, len(chip.Regulators))
		for i := range bp {
			bp[i] = 3.0
		}
		if err := m.SetPower(bp, vp); err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := build()
	pooled := build()
	if pooled.nNodes >= parRowThreshold {
		t.Fatalf("compact model has %d nodes, expected < %d", pooled.nNodes, parRowThreshold)
	}
	pool := par.New(4)
	defer pool.Close()
	pooled.SetPool(pool)
	for step := 0; step < 5; step++ {
		if err := serial.Step(1e-3); err != nil {
			t.Fatal(err)
		}
		if err := pooled.Step(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	for i := range serial.temp {
		if serial.temp[i] != pooled.temp[i] {
			t.Fatalf("node %d: serial %v vs pooled %v", i, serial.temp[i], pooled.temp[i])
		}
	}
}
