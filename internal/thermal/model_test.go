package thermal

import (
	"math"
	"strings"
	"testing"

	"thermogater/internal/floorplan"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(floorplan.MustPOWER8(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func zeroPower(m *Model) ([]float64, []float64) {
	return make([]float64, len(m.Chip().Blocks)), make([]float64, len(m.Chip().Regulators))
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, DefaultConfig()); err == nil {
		t.Error("nil chip accepted")
	}
	bad := DefaultConfig()
	bad.SinkResKPerW = 0
	if _, err := NewModel(floorplan.MustPOWER8(), bad); err == nil {
		t.Error("invalid config accepted")
	}
	var ce *ConfigError
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted zero sink resistance")
	}
	if !strings.Contains(err.Error(), "SinkResKPerW") {
		t.Errorf("error %q does not name the field", err)
	}
	_ = ce
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0.01); err != nil {
		t.Fatal(err)
	}
	amb := m.Config().AmbientC
	max, _ := m.MaxTemp()
	if math.Abs(max-amb) > 1e-9 {
		t.Errorf("unpowered chip at %v°C, ambient is %v", max, amb)
	}
	if g := m.Gradient(); math.Abs(g) > 1e-9 {
		t.Errorf("unpowered gradient = %v", g)
	}
}

func TestSinkTempMatchesTotalPower(t *testing.T) {
	// In equilibrium all injected heat leaves through the sink, so
	// T_sink = T_amb + P_total × R_sink exactly.
	m := newModel(t)
	bp, vp := zeroPower(m)
	var total float64
	for i := range bp {
		bp[i] = 1.0
		total += 1.0
	}
	for r := range vp {
		vp[r] = 0.1
		total += 0.1
	}
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyState(1e-7, 0); err != nil {
		t.Fatal(err)
	}
	want := m.Config().AmbientC + total*m.Config().SinkResKPerW
	if got := m.SinkTemp(); math.Abs(got-want) > 1e-3 {
		t.Errorf("sink temp = %v, want %v", got, want)
	}
}

func TestHotspotLocality(t *testing.T) {
	m := newModel(t)
	chip := m.Chip()
	bp, vp := zeroPower(m)
	exu, _ := chip.BlockByName("core0/EXU")
	bp[exu.ID] = 5
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	max, where := m.MaxTemp()
	if where != "core0/EXU" {
		t.Errorf("hotspot at %q, want core0/EXU", where)
	}
	if max <= m.Config().AmbientC {
		t.Error("powered hotspot not above ambient")
	}
	// Adjacent block warmer than a far corner block.
	isu, _ := chip.BlockByName("core0/ISU")
	farL3, _ := chip.BlockByName("l3bank7/L3")
	if m.BlockTemp(isu.ID) <= m.BlockTemp(farL3.ID) {
		t.Errorf("neighbour ISU %v not hotter than far L3 %v",
			m.BlockTemp(isu.ID), m.BlockTemp(farL3.ID))
	}
}

func TestRegulatorRiseAboveHost(t *testing.T) {
	// A powered regulator in equilibrium sits P/G above its host block.
	m := newModel(t)
	bp, vp := zeroPower(m)
	const p = 0.2
	vp[0] = p
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyState(1e-7, 0); err != nil {
		t.Fatal(err)
	}
	host := m.Chip().Regulators[0].NearestBlock
	rise := m.VRTemp(0) - m.BlockTemp(host)
	want := p / m.Config().GRegulatorWPerK
	if math.Abs(rise-want) > 0.01*want {
		t.Errorf("VR rise above host = %v, want %v", rise, want)
	}
}

func TestVRTimeConstant(t *testing.T) {
	// The regulator node must respond on the millisecond scale: after one
	// time constant τ = C/G it covers ≈63% of its step response.
	m := newModel(t)
	bp, vp := zeroPower(m)
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	// Settle the substrate at ambient first, then step VR 0 power.
	vp[0] = 0.2
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	tau := cfg.RegulatorCapJPerK / cfg.GRegulatorWPerK
	if tau < 0.2e-3 || tau > 2.5e-3 {
		t.Fatalf("VR time constant %v s outside the sub-millisecond design window", tau)
	}
	start := m.VRTemp(0)
	if err := m.Step(tau); err != nil {
		t.Fatal(err)
	}
	// The host block barely moves over one VR τ, so the asymptote is
	// ≈ host + P/G.
	host := m.Chip().Regulators[0].NearestBlock
	target := m.BlockTemp(host) + vp[0]/cfg.GRegulatorWPerK
	frac := (m.VRTemp(0) - start) / (target - start)
	if frac < 0.55 || frac > 0.72 {
		t.Errorf("after one τ the VR covered %v of its step, want ≈0.63", frac)
	}
}

func TestTransientApproachesSteadyState(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	for i := range bp {
		bp[i] = 0.8
	}
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	// Reference steady state on a twin model.
	ref := newModel(t)
	if err := ref.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.SteadyState(1e-7, 0); err != nil {
		t.Fatal(err)
	}
	// Integrate long enough for the sink (slowest node) to settle.
	for i := 0; i < 400; i++ {
		if err := m.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(m.Chip().Blocks); i++ {
		if d := math.Abs(m.BlockTemp(i) - ref.BlockTemp(i)); d > 0.1 {
			t.Fatalf("block %d transient %v vs steady %v", i, m.BlockTemp(i), ref.BlockTemp(i))
		}
	}
}

func TestStepRejectsBadInput(t *testing.T) {
	m := newModel(t)
	if err := m.Step(0); err == nil {
		t.Error("zero step accepted")
	}
	if err := m.Step(-1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestSetPowerValidation(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	if err := m.SetPower(bp[:3], vp); err == nil {
		t.Error("short block power accepted")
	}
	if err := m.SetPower(bp, vp[:5]); err == nil {
		t.Error("short VR power accepted")
	}
	bp[0] = -1
	if err := m.SetPower(bp, vp); err == nil {
		t.Error("negative block power accepted")
	}
	bp[0] = math.NaN()
	if err := m.SetPower(bp, vp); err == nil {
		t.Error("NaN block power accepted")
	}
	bp[0] = 0
	vp[0] = -0.1
	if err := m.SetPower(bp, vp); err == nil {
		t.Error("negative VR power accepted")
	}
}

func TestSteadyStateValidation(t *testing.T) {
	m := newModel(t)
	if _, err := m.SteadyState(0, 10); err == nil {
		t.Error("zero tolerance accepted")
	}
	bp, vp := zeroPower(m)
	for i := range bp {
		bp[i] = 1.5
	}
	if err := m.SetPower(bp, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyState(1e-9, 1); err == nil {
		t.Error("impossible iteration budget converged")
	}
}

func TestResetUniform(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	bp[0] = 10
	_ = m.SetPower(bp, vp)
	_ = m.Step(1)
	m.Reset(55)
	max, _ := m.MaxTemp()
	if max != 55 || m.Gradient() != 0 {
		t.Errorf("Reset(55): max %v gradient %v", max, m.Gradient())
	}
}

func TestGradientAndMaxTempConsistency(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	exu, _ := m.Chip().BlockByName("core3/EXU")
	bp[exu.ID] = 6
	vp[27+4] = 0.3 // a VR of core 3 (domain 3 regulators are 27..35)
	_ = m.SetPower(bp, vp)
	if _, err := m.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	max, where := m.MaxTemp()
	if max <= m.Config().AmbientC {
		t.Error("max temp below ambient")
	}
	if m.Gradient() <= 0 {
		t.Error("non-positive gradient with a hotspot present")
	}
	if where == "" {
		t.Error("MaxTemp returned empty location")
	}
	// A hot enough regulator node must win MaxTemp.
	vp[27+4] = 3.0
	_ = m.SetPower(bp, vp)
	if _, err := m.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	_, where = m.MaxTemp()
	if !strings.HasPrefix(where, "vr") {
		t.Errorf("expected a regulator hotspot, got %q", where)
	}
}

func TestHeatMap(t *testing.T) {
	m := newModel(t)
	bp, vp := zeroPower(m)
	exu, _ := m.Chip().BlockByName("core0/EXU")
	bp[exu.ID] = 8
	_ = m.SetPower(bp, vp)
	if _, err := m.SteadyState(1e-6, 0); err != nil {
		t.Fatal(err)
	}
	grid, err := m.HeatMap(42, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 42 || len(grid[0]) != 42 {
		t.Fatalf("grid is %dx%d", len(grid), len(grid[0]))
	}
	// The hottest cell must lie inside core0's tile (top-left region).
	var hx, hy int
	best := math.Inf(-1)
	for y := range grid {
		for x := range grid[y] {
			if grid[y][x] > best {
				best, hx, hy = grid[y][x], x, y
			}
		}
	}
	if hx > 10 || hy > 9 {
		t.Errorf("hottest cell at (%d,%d), expected inside core0 tile", hx, hy)
	}
	if _, err := m.HeatMap(0, 10); err == nil {
		t.Error("zero-width heat map accepted")
	}
}

func TestEnergyFlowDirection(t *testing.T) {
	// Heating only the die must never cool any node below ambient.
	m := newModel(t)
	bp, vp := zeroPower(m)
	for i := range bp {
		bp[i] = 2
	}
	_ = m.SetPower(bp, vp)
	for s := 0; s < 100; s++ {
		if err := m.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	amb := m.Config().AmbientC
	for i := 0; i < len(m.Chip().Blocks); i++ {
		if m.BlockTemp(i) < amb-1e-9 {
			t.Fatalf("block %d below ambient", i)
		}
	}
}

// TestCompactLinearity: with fixed power inputs the RC network is linear,
// so steady-state temperature rises superpose: rise(P1+P2) =
// rise(P1) + rise(P2).
func TestCompactLinearity(t *testing.T) {
	chip := floorplan.MustPOWER8()
	amb := DefaultConfig().AmbientC
	solve := func(fill func(bp, vp []float64)) []float64 {
		m, err := NewModel(chip, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		bp := make([]float64, len(chip.Blocks))
		vp := make([]float64, len(chip.Regulators))
		fill(bp, vp)
		if err := m.SetPower(bp, vp); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SteadyState(1e-7, 0); err != nil {
			t.Fatal(err)
		}
		return m.BlockTemps(nil)
	}
	exu, _ := chip.BlockByName("core0/EXU")
	l3, _ := chip.BlockByName("l3bank5/L3")
	t1 := solve(func(bp, vp []float64) { bp[exu.ID] = 4 })
	t2 := solve(func(bp, vp []float64) { bp[l3.ID] = 3; vp[10] = 0.2 })
	both := solve(func(bp, vp []float64) { bp[exu.ID] = 4; bp[l3.ID] = 3; vp[10] = 0.2 })
	for i := range both {
		sum := (t1[i] - amb) + (t2[i] - amb) + amb
		if math.Abs(both[i]-sum) > 0.01 {
			t.Fatalf("block %d: superposition violated: %v vs %v", i, both[i], sum)
		}
	}
}

// TestVRHeatFlowsIntoHostBlock: in equilibrium, all of a regulator's loss
// transits its host block, raising it above an unpowered neighbour.
func TestVRHeatFlowsIntoHostBlock(t *testing.T) {
	m := newModel(t)
	chip := m.Chip()
	bp, vp := zeroPower(m)
	// Power all regulators of core 0's domain only.
	for _, rid := range chip.Domains[0].Regulators {
		vp[rid] = 0.15
	}
	_ = m.SetPower(bp, vp)
	if _, err := m.SteadyState(1e-7, 0); err != nil {
		t.Fatal(err)
	}
	// Core 0 blocks must be warmer than core 7's (far corner) blocks.
	exu0, _ := chip.BlockByName("core0/EXU")
	exu7, _ := chip.BlockByName("core7/EXU")
	if m.BlockTemp(exu0.ID) <= m.BlockTemp(exu7.ID)+0.1 {
		t.Errorf("VR heat did not warm the host region: core0 EXU %v vs core7 EXU %v",
			m.BlockTemp(exu0.ID), m.BlockTemp(exu7.ID))
	}
}
