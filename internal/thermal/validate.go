package thermal

import (
	"fmt"
	"math"
)

// validatePowers is the shared power-map validation both the compact Model
// and the GridModel run before installing heat inputs: the block and
// regulator vectors must match the chip, and every entry must be a
// non-negative real watt figure. A negative or NaN power is a sign error
// upstream that would silently corrupt the temperature field.
func validatePowers(blockPower, vrPower []float64, nBlocks, nVRs int) error {
	if len(blockPower) != nBlocks {
		return fmt.Errorf("thermal: %d block powers, chip has %d blocks", len(blockPower), nBlocks)
	}
	if len(vrPower) != nVRs {
		return fmt.Errorf("thermal: %d regulator powers, chip has %d regulators", len(vrPower), nVRs)
	}
	for i, p := range blockPower {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("thermal: block %d power %v invalid", i, p)
		}
	}
	for r, p := range vrPower {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("thermal: regulator %d power %v invalid", r, p)
		}
	}
	return nil
}
