// Package uarch is the microarchitectural activity simulator standing in
// for SNIPER in the paper's toolchain. It advances an 8-core machine
// through a benchmark's region of interest and produces, per time step, the
// activity factor of every floorplan block (core pipeline units, private
// L2s, shared L3 banks, NOC and memory controllers) plus the di/dt burst
// events that matter for voltage noise. The governor only ever sees
// activity-derived power, so an interval model at 100µs resolution with
// cycle-level bursts inside sampled windows exercises exactly the code
// paths the paper's cycle-accurate traces did.
package uarch

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
	"thermogater/internal/workload"
)

// DefaultStepMS is the native simulation step: ten steps per 1ms gating
// decision epoch.
const DefaultStepMS = 0.1

// ClockGHz is the core clock (Table 1).
const ClockGHz = 4.0

// BurstEvent is one di/dt event: a sudden current surge (pipeline refill,
// cache burst, power-gating wake) lasting a few tens of cycles. Bursts are
// what push voltage noise past the emergency threshold (Table 2).
type BurstEvent struct {
	// Core is the core on which the burst occurs.
	Core int
	// TimeMS is the burst onset, milliseconds from ROI start.
	TimeMS float64
	// Cycles is the burst duration in core cycles.
	Cycles int
	// Amp is the fractional current surge (1.0 = +100% of the core's
	// instantaneous current).
	Amp float64
}

// Frame is the simulator output for one step.
type Frame struct {
	// TimeMS is the frame start time.
	TimeMS float64
	// DtMS is the frame duration.
	DtMS float64
	// Activity holds one activity factor in [0, 1] per floorplan block,
	// indexed by Block.ID.
	Activity []float64
	// IPC is the estimated instructions per cycle per core.
	IPC []float64
	// Bursts lists the di/dt events that occurred within the frame.
	Bursts []BurstEvent
}

// Simulator advances one benchmark — or, in multiprogrammed mode, one
// independent benchmark per core — on the modelled chip.
type Simulator struct {
	chip     *floorplan.Chip
	profiles []workload.Profile // one per core
	mix      bool               // true when cores run independent programs
	threads  int

	time       float64 // ms
	noise      []float64
	coreRNG    []*workload.RNG
	burstRNG   *workload.RNG
	bankWeight [][]float64
	inStorm    []bool

	// Cached block indices for fast frame fills.
	coreBlocks [][]int // [core] -> block IDs of that core's units
	l3Blocks   []int   // bank -> block ID
	nocBlock   int
	mcBlocks   []int

	// bankScratch accumulates per-bank L3 traffic within one StepInto;
	// held on the simulator so the per-step fill allocates nothing.
	bankScratch []float64
}

// New creates a simulator for the given chip and benchmark profile, with
// one software thread per core. The seed makes runs reproducible; the same
// (profile, seed) pair always produces identical traces.
func New(chip *floorplan.Chip, profile workload.Profile, seed uint64) (*Simulator, error) {
	profiles := make([]workload.Profile, floorplan.NumCores)
	for i := range profiles {
		profiles[i] = profile
	}
	s, err := NewMix(chip, profiles, seed)
	if err != nil {
		return nil, err
	}
	s.mix = false
	return s, nil
}

// NewMix creates a multiprogrammed simulator: each core runs its own
// single-threaded benchmark (Section 7: ThermoGater controls each
// Vdd-domain independently and accommodates workload heterogeneity,
// including multiprogramming). Thread skew and serial phases do not apply
// in mix mode — every core is its program's only thread.
func NewMix(chip *floorplan.Chip, profiles []workload.Profile, seed uint64) (*Simulator, error) {
	if chip == nil {
		return nil, errors.New("uarch: nil chip")
	}
	if len(profiles) != floorplan.NumCores {
		return nil, fmt.Errorf("uarch: %d profiles for %d cores", len(profiles), floorplan.NumCores)
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("uarch: core %d: %w", i, err)
		}
	}
	s := &Simulator{
		chip:     chip,
		profiles: append([]workload.Profile(nil), profiles...),
		mix:      true,
		threads:  floorplan.NumCores,
	}
	root := workload.NewRNG(seed ^ 0x7468657267617465)
	s.burstRNG = root.Fork(0xb0)
	s.noise = make([]float64, s.threads)
	s.inStorm = make([]bool, s.threads)
	s.coreRNG = make([]*workload.RNG, s.threads)
	for c := 0; c < s.threads; c++ {
		s.coreRNG[c] = root.Fork(uint64(c) + 1)
	}

	// L3 bank traffic weights with each core profile's skew, normalised
	// to 1 per core.
	s.bankWeight = make([][]float64, s.threads)
	for c := 0; c < s.threads; c++ {
		w := make([]float64, floorplan.NumL3Banks)
		var wsum float64
		for b := range w {
			w[b] = 1 - s.profiles[c].BankSkew*float64(b)/float64(floorplan.NumL3Banks-1)
			wsum += w[b]
		}
		for b := range w {
			w[b] /= wsum
		}
		s.bankWeight[c] = w
	}

	// Size the per-core and MC index caches exactly before filling them.
	s.coreBlocks = make([][]int, floorplan.NumCores)
	perCore := make([]int, floorplan.NumCores)
	nMC := 0
	for _, b := range chip.Blocks {
		switch {
		case b.Core >= 0:
			perCore[b.Core]++
		case b.Class == floorplan.UnitMC:
			nMC++
		}
	}
	for c := range s.coreBlocks {
		s.coreBlocks[c] = make([]int, 0, perCore[c])
	}
	s.mcBlocks = make([]int, 0, nMC)
	s.l3Blocks = make([]int, floorplan.NumL3Banks)
	bank := 0
	for _, b := range chip.Blocks {
		switch {
		case b.Core >= 0:
			s.coreBlocks[b.Core] = append(s.coreBlocks[b.Core], b.ID) //lint:ignore capgrow capacity set per core just above; the establishing index is spelled c, not b.Core
		case b.Class == floorplan.UnitL3:
			s.l3Blocks[bank] = b.ID
			bank++
		case b.Class == floorplan.UnitNOC:
			s.nocBlock = b.ID
		case b.Class == floorplan.UnitMC:
			s.mcBlocks = append(s.mcBlocks, b.ID)
		}
	}
	if bank != floorplan.NumL3Banks {
		return nil, fmt.Errorf("uarch: found %d L3 banks, want %d", bank, floorplan.NumL3Banks)
	}
	s.bankScratch = make([]float64, floorplan.NumL3Banks)
	return s, nil
}

// Profile returns core 0's benchmark (the whole chip's benchmark in
// single-program mode).
func (s *Simulator) Profile() workload.Profile { return s.profiles[0] }

// Profiles returns the per-core benchmark assignment.
func (s *Simulator) Profiles() []workload.Profile {
	return append([]workload.Profile(nil), s.profiles...)
}

// Mixed reports whether cores run independent programs.
func (s *Simulator) Mixed() bool { return s.mix }

// TimeMS returns the current simulation time in milliseconds.
func (s *Simulator) TimeMS() float64 { return s.time }

// Done reports whether every program's region of interest has been fully
// simulated.
func (s *Simulator) Done() bool {
	for _, p := range s.profiles {
		if s.time < float64(p.DurationMS) {
			return false
		}
	}
	return true
}

// State is the simulator's mutable state for checkpointing; the chip,
// profiles and cached indices are configuration and are rebuilt.
type State struct {
	TimeMS   float64
	Noise    []float64
	InStorm  []bool
	CoreRNG  []uint64
	BurstRNG uint64
}

// State snapshots the simulator.
func (s *Simulator) State() *State {
	st := &State{
		TimeMS:   s.time,
		Noise:    append([]float64(nil), s.noise...),
		InStorm:  append([]bool(nil), s.inStorm...),
		CoreRNG:  make([]uint64, len(s.coreRNG)),
		BurstRNG: s.burstRNG.State(),
	}
	for i, r := range s.coreRNG {
		st.CoreRNG[i] = r.State()
	}
	return st
}

// Restore loads a snapshot taken by State on a simulator built from the
// same chip, profiles and seed.
func (s *Simulator) Restore(st *State) error {
	if st == nil {
		return errors.New("uarch: nil state")
	}
	if len(st.Noise) != s.threads || len(st.InStorm) != s.threads || len(st.CoreRNG) != s.threads {
		return fmt.Errorf("uarch: state covers %d threads, simulator has %d", len(st.Noise), s.threads)
	}
	if st.TimeMS < 0 || math.IsNaN(st.TimeMS) || math.IsInf(st.TimeMS, 0) {
		return fmt.Errorf("uarch: state time %v invalid", st.TimeMS)
	}
	s.time = st.TimeMS
	copy(s.noise, st.Noise)
	copy(s.inStorm, st.InStorm)
	for i := range s.coreRNG {
		s.coreRNG[i].SetState(st.CoreRNG[i])
	}
	s.burstRNG.SetState(st.BurstRNG)
	return nil
}

// clamp01 saturates an activity factor into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Step advances the simulation by dtMS milliseconds and returns the
// resulting activity frame. dtMS must be positive. It is the
// convenience wrapper over StepInto and allocates a fresh frame per
// call; per-epoch callers (the sim runner's producer) use StepInto
// with recycled frames instead.
func (s *Simulator) Step(dtMS float64) (Frame, error) {
	var f Frame
	if err := s.StepInto(dtMS, &f); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// StepInto is Step writing into a caller-owned frame: the Activity and
// IPC slices are resized in place when their capacity suffices and the
// burst list is reset and appended to, so a frame reused across steps
// makes the steady-state step allocation-free. The frame's previous
// contents are fully overwritten.
func (s *Simulator) StepInto(dtMS float64, f *Frame) error {
	if dtMS <= 0 {
		return fmt.Errorf("uarch: non-positive step %v", dtMS)
	}
	f.TimeMS = s.time
	f.DtMS = dtMS
	if cap(f.Activity) < len(s.chip.Blocks) {
		f.Activity = make([]float64, len(s.chip.Blocks))
	}
	f.Activity = f.Activity[:len(s.chip.Blocks)]
	for i := range f.Activity {
		f.Activity[i] = 0
	}
	if cap(f.IPC) < s.threads {
		f.IPC = make([]float64, s.threads)
	}
	f.IPC = f.IPC[:s.threads]
	f.Bursts = f.Bursts[:0]

	var totalL3Traffic float64
	bankTraffic := s.bankScratch
	for i := range bankTraffic {
		bankTraffic[i] = 0
	}
	var mcTraffic float64
	for c := 0; c < s.threads; c++ {
		p := &s.profiles[c]
		ph := p.PhaseAt(s.time)
		compute, mem := s.threadIntensity(c, ph)

		// Per-unit activity, indexed by unit class. The ISU and IFU track
		// overall issue/fetch pressure; the L2 sees the L1 miss stream.
		// A fixed-size array keeps this per-thread table on the stack.
		var act [floorplan.NumUnitClasses]float64
		act[floorplan.UnitEXU] = clamp01(compute)
		act[floorplan.UnitLSU] = clamp01(mem)
		act[floorplan.UnitISU] = clamp01(0.55*compute + 0.25*mem)
		act[floorplan.UnitIFU] = clamp01(0.45*compute + 0.25*mem)
		act[floorplan.UnitL2] = clamp01(6 * mem * p.L1Miss)
		for _, bid := range s.coreBlocks[c] {
			f.Activity[bid] = act[s.chip.Blocks[bid].Class]
		}

		// Traffic escaping the private hierarchy feeds the L3/NOC/MC chain.
		traffic := mem * p.L1Miss * p.L2Miss
		totalL3Traffic += traffic
		for b := range bankTraffic {
			bankTraffic[b] += traffic * s.bankWeight[c][b]
		}
		mcTraffic += traffic * p.L3Miss

		// An 8-wide core sustains IPC proportional to issue pressure,
		// degraded by memory stalls.
		f.IPC[c] = 8 * (0.55*compute + 0.35*mem) * (1 - 0.5*p.L1Miss*mem)

		// Poisson di/dt bursts, optionally clustered into storms: within
		// a storm the rate is scaled up so the long-run average matches
		// the profile's nominal rate.
		expected := p.BurstRatePerMS * dtMS
		if frac := p.BurstClusterFrac; frac > 0 && frac < 1 {
			s.stepStorm(c, dtMS, frac)
			if s.inStorm[c] {
				expected /= frac
			} else {
				expected = 0
			}
		}
		for expected > 0 {
			if s.burstRNG.Float64() < expected {
				f.Bursts = append(f.Bursts, BurstEvent{
					Core:   c,
					TimeMS: s.time + s.burstRNG.Float64()*dtMS,
					Cycles: p.BurstCycles,
					Amp:    p.BurstAmp * (0.7 + 0.6*s.burstRNG.Float64()),
				})
			}
			expected--
		}
	}

	// Shared resources. Each bank sees its weighted share of the traffic
	// escaping the private hierarchies; the gain converts miss traffic into
	// an SRAM activity factor.
	const l3Gain, nocGain, mcGain = 2.0, 1.5, 3.0
	for b, bid := range s.l3Blocks {
		f.Activity[bid] = clamp01(l3Gain * bankTraffic[b] * float64(floorplan.NumL3Banks))
	}
	f.Activity[s.nocBlock] = clamp01(nocGain * totalL3Traffic)
	for _, bid := range s.mcBlocks {
		f.Activity[bid] = clamp01(mcGain * mcTraffic)
	}

	s.time += dtMS
	return nil
}

// stepStorm advances one core's two-state burst-storm process: mean storm
// length BurstStormMS (default 2ms), long-run storm occupancy frac.
func (s *Simulator) stepStorm(c int, dtMS, frac float64) {
	stormMS := s.profiles[c].BurstStormMS
	if stormMS <= 0 {
		stormMS = 2.0
	}
	if s.inStorm[c] {
		if s.burstRNG.Float64() < dtMS/stormMS {
			s.inStorm[c] = false
		}
	} else {
		calmMS := stormMS * (1 - frac) / frac
		if s.burstRNG.Float64() < dtMS/calmMS {
			s.inStorm[c] = true
		}
	}
}

// threadIntensity computes the (compute, memory) intensity of one thread in
// the current phase, applying thread skew, serialisation, and AR(1) noise.
func (s *Simulator) threadIntensity(c int, ph workload.Phase) (compute, mem float64) {
	p := &s.profiles[c]
	skew := 1.0
	if !s.mix && s.threads > 1 {
		skew = 1 - p.ThreadSkew*float64(c)/float64(s.threads-1)
	}

	// AR(1) activity noise, stationary variance NoiseSigma².
	phi := p.NoisePhi
	s.noise[c] = phi*s.noise[c] + p.NoiseSigma*sqrt1mPhi2(phi)*s.coreRNG[c].Norm()
	n := 1 + s.noise[c]
	if n < 0 {
		n = 0
	}

	compute = p.BaseCompute * ph.ComputeScale * skew * n
	mem = p.BaseMemory * ph.MemScale * skew * n
	if !s.mix && ph.Kind == workload.Serial && c != 0 {
		// Only thread 0 makes progress; the rest spin at low activity.
		// In multiprogrammed mode each core is its program's only thread,
		// so serial sections run at full speed.
		compute *= 0.08
		mem *= 0.05
	}
	return compute, mem
}

// sqrt1mPhi2 returns sqrt(1 − φ²), the innovation scaling that keeps an
// AR(1) process at its stationary variance.
func sqrt1mPhi2(phi float64) float64 {
	v := 1 - phi*phi
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}
