package uarch

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/workload"
)

func newSim(t *testing.T, bench string, seed uint64) *Simulator {
	t.Helper()
	chip := floorplan.MustPOWER8()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(chip, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	p, _ := workload.ByName("fft")
	if _, err := New(nil, p, 1); err == nil {
		t.Error("nil chip accepted")
	}
	bad := p
	bad.DurationMS = 0
	if _, err := New(floorplan.MustPOWER8(), bad, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestStepBounds(t *testing.T) {
	s := newSim(t, "fft", 1)
	for i := 0; i < 200; i++ {
		f, err := s.Step(DefaultStepMS)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Activity) != len(floorplan.MustPOWER8().Blocks) {
			t.Fatalf("frame has %d activities", len(f.Activity))
		}
		for bid, a := range f.Activity {
			if a < 0 || a > 1 || math.IsNaN(a) {
				t.Fatalf("step %d block %d: activity %v outside [0,1]", i, bid, a)
			}
		}
		for _, ipc := range f.IPC {
			if ipc < 0 || ipc > 8 {
				t.Fatalf("IPC %v outside [0,8]", ipc)
			}
		}
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	s := newSim(t, "fft", 1)
	if _, err := s.Step(0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := s.Step(-1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := newSim(t, "barnes", 42)
	b := newSim(t, "barnes", 42)
	for i := 0; i < 100; i++ {
		fa, _ := a.Step(DefaultStepMS)
		fb, _ := b.Step(DefaultStepMS)
		for bid := range fa.Activity {
			if fa.Activity[bid] != fb.Activity[bid] {
				t.Fatalf("step %d: traces diverge at block %d", i, bid)
			}
		}
		if len(fa.Bursts) != len(fb.Bursts) {
			t.Fatalf("step %d: burst streams diverge", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := newSim(t, "barnes", 1)
	b := newSim(t, "barnes", 2)
	same := true
	for i := 0; i < 50 && same; i++ {
		fa, _ := a.Step(DefaultStepMS)
		fb, _ := b.Step(DefaultStepMS)
		for bid := range fa.Activity {
			if fa.Activity[bid] != fb.Activity[bid] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestTimeAdvancesAndDone(t *testing.T) {
	s := newSim(t, "fft", 1)
	if s.Done() {
		t.Error("fresh simulator reports done")
	}
	total := float64(s.Profile().DurationMS)
	for !s.Done() {
		if _, err := s.Step(10); err != nil {
			t.Fatal(err)
		}
	}
	if s.TimeMS() < total {
		t.Errorf("done at %v ms, ROI is %v ms", s.TimeMS(), total)
	}
}

func TestComputeVsMemoryCharacter(t *testing.T) {
	// cholesky (compute heavy) must load EXUs more than LSUs; radix
	// (memory streaming) the other way around.
	meanUnit := func(bench string, class floorplan.UnitClass) float64 {
		s := newSim(t, bench, 7)
		chip := floorplan.MustPOWER8()
		var sum float64
		var n int
		for i := 0; i < 500; i++ {
			f, err := s.Step(DefaultStepMS)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range chip.Blocks {
				if b.Class == class {
					sum += f.Activity[b.ID]
					n++
				}
			}
		}
		return sum / float64(n)
	}
	if exu, lsu := meanUnit("cholesky", floorplan.UnitEXU), meanUnit("cholesky", floorplan.UnitLSU); exu <= lsu {
		t.Errorf("cholesky EXU %v not above LSU %v", exu, lsu)
	}
	if exu, lsu := meanUnit("radix", floorplan.UnitEXU), meanUnit("radix", floorplan.UnitLSU); exu >= lsu {
		t.Errorf("radix EXU %v not below LSU %v", exu, lsu)
	}
	// cholesky runs much hotter than raytrace overall.
	if c, r := meanUnit("cholesky", floorplan.UnitEXU), meanUnit("raytrace", floorplan.UnitEXU); c < 2*r {
		t.Errorf("cholesky EXU %v not well above raytrace %v", c, r)
	}
}

func TestBurstRates(t *testing.T) {
	count := func(bench string) int {
		s := newSim(t, bench, 3)
		n := 0
		for i := 0; i < 2000; i++ { // 200ms
			f, err := s.Step(DefaultStepMS)
			if err != nil {
				t.Fatal(err)
			}
			n += len(f.Bursts)
		}
		return n
	}
	expect := func(bench string) float64 {
		p, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		return p.BurstRatePerMS * 8 * 200 // cores × window
	}
	barnes := count("barnes")
	lucb := count("lu_cb")
	// Storm clustering preserves the long-run rate but adds variance;
	// allow a factor-of-two band around the expectation.
	if want := expect("barnes"); float64(barnes) < want/2 || float64(barnes) > want*2 {
		t.Errorf("barnes bursts = %d, expected ≈%.0f", barnes, want)
	}
	if lucb > barnes/10 {
		t.Errorf("lu_cb bursts = %d, should be far below barnes %d", lucb, barnes)
	}
}

func TestBurstEventFields(t *testing.T) {
	s := newSim(t, "barnes", 9)
	for i := 0; i < 500; i++ {
		f, err := s.Step(DefaultStepMS)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range f.Bursts {
			if b.Core < 0 || b.Core >= floorplan.NumCores {
				t.Fatalf("burst core %d", b.Core)
			}
			if b.TimeMS < f.TimeMS || b.TimeMS > f.TimeMS+f.DtMS {
				t.Fatalf("burst at %v outside frame [%v, %v]", b.TimeMS, f.TimeMS, f.TimeMS+f.DtMS)
			}
			if b.Cycles <= 0 || b.Amp <= 0 {
				t.Fatalf("burst %+v has non-positive duration/amplitude", b)
			}
		}
	}
}

func TestSerialPhaseConcentratesWork(t *testing.T) {
	// Build a profile that is 100% serial; only core 0 should be active.
	p, _ := workload.ByName("fft")
	p.Phases = []workload.Phase{{Kind: workload.Serial, Frac: 1, ComputeScale: 1, MemScale: 1}}
	p.NoiseSigma = 0
	chip := floorplan.MustPOWER8()
	s, err := New(chip, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Step(DefaultStepMS)
	if err != nil {
		t.Fatal(err)
	}
	exu0, err2 := chip.BlockByName("core0/EXU")
	if err2 != nil {
		t.Fatal(err2)
	}
	exu5, _ := chip.BlockByName("core5/EXU")
	if f.Activity[exu0.ID] < 5*f.Activity[exu5.ID] {
		t.Errorf("serial phase: core0 EXU %v not dominating core5 EXU %v",
			f.Activity[exu0.ID], f.Activity[exu5.ID])
	}
}

func TestBarrierPhaseQuiesces(t *testing.T) {
	p, _ := workload.ByName("fft")
	p.Phases = []workload.Phase{{Kind: workload.Barrier, Frac: 1, ComputeScale: 0.05, MemScale: 0.05}}
	p.NoiseSigma = 0
	chip := floorplan.MustPOWER8()
	s, _ := New(chip, p, 1)
	f, _ := s.Step(DefaultStepMS)
	for _, b := range chip.Blocks {
		if b.Kind == floorplan.Logic && f.Activity[b.ID] > 0.1 {
			t.Errorf("barrier phase: %s activity %v too high", b.Name, f.Activity[b.ID])
		}
	}
}

func TestBankSkewBiasesTraffic(t *testing.T) {
	p, _ := workload.ByName("raytrace") // BankSkew 0.30
	chip := floorplan.MustPOWER8()
	s, _ := New(chip, p, 5)
	var first, last float64
	for i := 0; i < 1000; i++ {
		f, _ := s.Step(DefaultStepMS)
		b0, _ := chip.BlockByName("l3bank0/L3")
		b7, _ := chip.BlockByName("l3bank7/L3")
		first += f.Activity[b0.ID]
		last += f.Activity[b7.ID]
	}
	if first <= last {
		t.Errorf("bank skew not applied: bank0 %v <= bank7 %v", first, last)
	}
}

func TestThreadSkewBiasesCores(t *testing.T) {
	p, _ := workload.ByName("raytrace") // ThreadSkew 0.30
	chip := floorplan.MustPOWER8()
	s, _ := New(chip, p, 5)
	var c0, c7 float64
	exu0, _ := chip.BlockByName("core0/EXU")
	exu7, _ := chip.BlockByName("core7/EXU")
	for i := 0; i < 1000; i++ {
		f, _ := s.Step(DefaultStepMS)
		c0 += f.Activity[exu0.ID]
		c7 += f.Activity[exu7.ID]
	}
	if c0 <= c7 {
		t.Errorf("thread skew not applied: core0 %v <= core7 %v", c0, c7)
	}
}
