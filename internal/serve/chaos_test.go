package serve

// The in-process chaos suite: every test injects a failure mode the
// robustness layer claims to survive — a worker dying mid-job, repeated
// preemption, a drain/restart cycle, slow and disconnecting stream
// clients, fault-schedule jobs — and asserts the service's invariants
// held: no job lost, no record duplicated, and (under a frozen clock)
// the final telemetry stream byte-identical to an uninterrupted run's.
// scripts/chaos_serve.sh and the CI serve job run these with -race.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// chaosSpec is a job long enough to interrupt mid-flight but cheap
// enough for a single-core CI box.
func chaosSpec(seed uint64) JobSpec {
	return JobSpec{Policy: "all-on", Benchmark: "fft", Seed: seed, DurationMS: 300, WarmupEpochs: 2}
}

// waitStreamLen blocks until the job's stream holds at least n bytes or
// the job settles.
func waitStreamLen(t *testing.T, j *Job, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.Stream().Len() < n && time.Now().Before(deadline) {
		select {
		case <-j.Done():
			return
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestChaosKillResumeByteIdentical(t *testing.T) {
	spec := chaosSpec(700)
	want := referenceStream(t, spec)

	sup := newTestSupervisor(t, Config{
		Workers:         1,
		FrozenClock:     true,
		CheckpointEvery: 10, // tight snapshots so the crash loses little
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
	})
	j, _, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make progress past a snapshot, then kill the attempt.
	waitStreamLen(t, j, 4096)
	if j.State() == StateDone {
		t.Skip("job finished before the kill landed")
	}
	if err := sup.Kill(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	got := j.Stream().Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash stream (%d bytes) differs from the uninterrupted reference (%d bytes)", len(got), len(want))
	}
	st := sup.Stats()
	if st.Crashes < 1 {
		t.Errorf("crash not counted: %+v", st)
	}
	if st.Retries < 1 {
		t.Errorf("retry not counted: %+v", st)
	}
	snap := j.Snapshot()
	if snap.Attempts < 2 {
		t.Errorf("job recorded %d attempts, want >= 2", snap.Attempts)
	}
}

func TestChaosRepeatedPreemptionByteIdentical(t *testing.T) {
	spec := chaosSpec(701)
	want := referenceStream(t, spec)

	sup := newTestSupervisor(t, Config{
		Workers:         2,
		FrozenClock:     true,
		CheckpointEvery: 25,
	})
	j, _, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Preempt is a no-op unless the job is running at that instant, so
	// count landed parks from the supervisor's counter, not our calls.
	for round := 0; round < 3; round++ {
		waitStreamLen(t, j, (round+1)*2048)
		if j.State() == StateDone {
			break
		}
		if err := sup.Preempt(j.ID); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let the park land before the next round
	}
	waitState(t, j, StateDone)
	parks := sup.Stats().Preempted
	got := j.Stream().Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("stream after %d preemptions (%d bytes) differs from the reference (%d bytes)", parks, len(got), len(want))
	}
	if parks < 1 {
		// Preemption lands only against a running job; on a fast or
		// noisily scheduled box the run can finish between the stream
		// checks and every park request. Same escape as the kill test.
		t.Skip("job finished before any preemption landed")
	}
	// Preemption spends no attempts: parking is not failing.
	if snap := j.Snapshot(); snap.Attempts != 1 {
		t.Errorf("preempted job consumed %d attempts, want 1", snap.Attempts)
	}
}

func TestChaosElasticPreemptionUnblocksSmallJobs(t *testing.T) {
	sup := newTestSupervisor(t, Config{
		Workers:         1,
		FrozenClock:     true,
		CheckpointEvery: 10,
		PreemptAfter:    30 * time.Millisecond,
	})
	long, _, err := sup.Submit(JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 710, DurationMS: 5000, WarmupEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateRunning)
	small, _, err := sup.Submit(smallSpec(711))
	if err != nil {
		t.Fatal(err)
	}
	// The monitor must park the hog so the small job gets the worker.
	waitState(t, small, StateDone)
	if sup.Stats().Preempted < 1 {
		t.Errorf("elastic preemption never fired: %+v", sup.Stats())
	}
	if err := sup.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	<-long.Done()
}

func TestChaosDrainSpoolRestartMidCrash(t *testing.T) {
	// Crash, then drain while the job waits out its retry backoff, then
	// restart: the spooled resume point must carry through to a
	// byte-identical finish.
	spool := t.TempDir()
	spec := chaosSpec(720)
	want := referenceStream(t, spec)

	sup, err := NewSupervisor(Config{
		Workers:         1,
		SpoolDir:        spool,
		FrozenClock:     true,
		CheckpointEvery: 10,
		RetryBackoff:    5 * time.Second, // long enough that drain beats the retry
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStreamLen(t, j, 4096)
	if j.State() == StateDone {
		t.Skip("job finished before the crash landed")
	}
	if err := sup.Kill(j.ID); err != nil {
		t.Fatal(err)
	}
	// Wait for the crash to park the job into its backoff window.
	waitState(t, j, StateParked)
	if err := sup.Drain(); err != nil {
		t.Fatal(err)
	}

	sup2 := newTestSupervisor(t, Config{
		Workers:         1,
		SpoolDir:        spool,
		FrozenClock:     true,
		CheckpointEvery: 10,
	})
	j2, err := sup2.Get(j.ID)
	if err != nil {
		t.Fatalf("crashed job not restored from spool: %v", err)
	}
	waitState(t, j2, StateDone)
	got := j2.Stream().Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("crash+drain+restart stream (%d bytes) differs from the reference (%d bytes)", len(got), len(want))
	}
}

func TestChaosSlowAndDisconnectingStreamClients(t *testing.T) {
	shortTimeout := 50 * time.Millisecond
	oldTimeout := streamWriteTimeout
	streamWriteTimeout = shortTimeout
	oldHeartbeat := heartbeatInterval
	heartbeatInterval = 10 * time.Millisecond
	defer func() {
		streamWriteTimeout = oldTimeout
		heartbeatInterval = oldHeartbeat
	}()

	sup := newTestSupervisor(t, Config{Workers: 1, FrozenClock: true})
	ts := httptest.NewServer(NewServer(sup))
	defer ts.Close()

	j, _, err := sup.Submit(chaosSpec(730))
	if err != nil {
		t.Fatal(err)
	}

	// A client that connects and never reads: the per-chunk write
	// deadline must disconnect it without stalling the job.
	stalled, err := http.Get(ts.URL + "/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	// Read nothing; just hold the connection open.
	var disconnected sync.WaitGroup
	disconnected.Add(1)
	go func() {
		defer disconnected.Done()
		time.Sleep(5 * shortTimeout)
		stalled.Body.Close()
	}()

	// A client that disconnects mid-stream: the handler must return.
	partial, err := http.Get(ts.URL + "/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := io.ReadFull(partial.Body, buf); err != nil {
		t.Fatalf("reading the first stream chunk: %v", err)
	}
	partial.Body.Close()

	// Neither client may hurt the job.
	waitState(t, j, StateDone)
	disconnected.Wait()

	// A well-behaved late reader still gets the canonical bytes (plus
	// heartbeats, which are live-only and must parse as records).
	want := referenceStream(t, chaosSpec(730))
	got := getBody(t, ts.URL+"/jobs/"+j.ID+"/stream", http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Fatalf("late reader got %d bytes, reference is %d", len(got), len(want))
	}
	if bytes.Contains(j.Stream().Bytes(), []byte("heartbeat")) {
		t.Fatal("a heartbeat leaked into the stored stream")
	}
}

func TestChaosFaultScheduleJobSurvives(t *testing.T) {
	// A job whose simulation itself carries an injected fault schedule:
	// the service must run it like any other and the stream must still be
	// reproducible.
	spec := JobSpec{
		Policy:       "pracVT",
		Benchmark:    "fft",
		Seed:         740,
		DurationMS:   50,
		WarmupEpochs: 2,
		Faults:       "vr-stuck-off@30:unit=3",
	}
	want := referenceStream(t, spec)
	sup := newTestSupervisor(t, Config{Workers: 1, FrozenClock: true, CheckpointEvery: 10})
	j, _, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if got := j.Stream().Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("fault-schedule job stream differs (%d vs %d bytes)", len(got), len(want))
	}
}

func TestChaosKillStormNeverLosesJobs(t *testing.T) {
	// A burst of jobs with kills sprayed across them: every job must
	// still reach a terminal state, none may vanish, and completed ones
	// stay byte-deterministic.
	const n = 8
	sup := newTestSupervisor(t, Config{
		Workers:         2,
		FrozenClock:     true,
		CheckpointEvery: 10,
		MaxAttempts:     5,
		RetryBackoff:    time.Millisecond,
	})
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, _, err := sup.Submit(JobSpec{Policy: "all-on", Benchmark: "fft", Seed: uint64(750 + i), DurationMS: 60, WarmupEpochs: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Spray kills while the burst runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 3; round++ {
			for _, j := range jobs {
				if j.State() == StateRunning {
					//nolint:errcheck — the job may settle concurrently
					sup.Kill(j.ID)
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	<-done
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-after(t, 60*time.Second):
			t.Fatalf("job %s never settled (state %s)", j.ID, j.State())
		}
		if st := j.State(); st != StateDone && st != StateFailed {
			t.Fatalf("job %s ended %s", j.ID, st)
		}
		if _, err := sup.Get(j.ID); err != nil {
			t.Fatalf("job %s vanished from the table: %v", j.ID, err)
		}
	}
	// Spot-check determinism on the first completed job.
	for _, j := range jobs {
		if j.State() != StateDone {
			continue
		}
		want := referenceStream(t, j.Spec)
		if got := j.Stream().Bytes(); !bytes.Equal(got, want) {
			t.Fatalf("kill-storm survivor %s stream differs (%d vs %d bytes)", j.ID, len(got), len(want))
		}
		break
	}
}
