package serve

import (
	"context"
	"sync"
	"time"

	"thermogater/internal/sim"
)

// JobState is one node of the lifecycle documented in docs/SERVICE.md:
//
//	queued → running → done
//	            ├────→ parked ─→ queued   (preemption, drain, crash retry)
//	            ├────→ failed             (attempts/budget exhausted, permanent error)
//	            └────→ canceled           (client cancel)
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateParked   JobState = "parked"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Failure is the durable record a failed attempt leaves behind. Panics
// are recovered into it — a crashing simulation takes down its job's
// attempt, never its worker.
type Failure struct {
	// Error is the final attempt's error text.
	Error string `json:"error"`
	// Attempts is how many attempts were spent in total.
	Attempts int `json:"attempts"`
	// Panicked marks failures recovered from a panic.
	Panicked bool `json:"panicked,omitempty"`
	// BackoffMS is the total retry backoff the job consumed (the retry
	// budget accounting).
	BackoffMS int64 `json:"backoff_ms,omitempty"`
}

// SweepCell is one (benchmark, policy) cell of a sweep job's aggregate.
type SweepCell struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	JobID     string `json:"job_id"`
	State     string `json:"state"`
	// Error carries the child's failure text for failed cells — each
	// failed cell is reported here exactly once.
	Error string `json:"error,omitempty"`
}

// SweepResult is a sweep job's aggregate: every cell exactly once, with
// per-cell job IDs so clients can fetch individual results and streams.
type SweepResult struct {
	Cells  []SweepCell `json:"cells"`
	Done   int         `json:"done"`
	Failed int         `json:"failed"`
}

// Job is one unit of supervised work. All mutable fields are guarded by
// mu; the supervisor is the only writer of state transitions.
type Job struct {
	// Immutable after creation.
	ID   string
	Spec JobSpec
	seq  uint64 // FIFO tie-break within a priority band

	mu        sync.Mutex
	state     JobState
	settledAt time.Time // when the job reached its terminal state (result-TTL eviction)
	attempts  int
	failure   *Failure
	result    *sim.Result
	sweep     *SweepResult
	epoch     int // last checkpointed epoch, -1 before the first
	worker    int // worker running (or last to run) the job
	backoff   time.Duration
	stream    *StreamBuf

	// ckpt holds the latest framed checkpoint (periodic crash snapshot,
	// or the one captured by checkpoint-on-cancel at park time) and the
	// stream length at its boundary — together they are the exact resume
	// point: restore ckpt, truncate stream to ckptLen, run.
	ckpt    []byte
	ckptLen int

	// cancel tears down the current run attempt with a cause; non-nil
	// only while running.
	cancel context.CancelCauseFunc
	// startedAt is when the current attempt started (elastic preemption
	// ages running jobs with it).
	startedAt time.Time
	// crashArmed makes the next telemetry record panic the attempt — the
	// chaos suite's deterministic stand-in for a worker dying mid-job.
	crashArmed bool

	// Sweep linkage: parent aggregates its children; a child may have
	// several parents when dedup shares it.
	parents  []*Job
	children []*Job
	pending  int // children not yet done/failed/canceled (parents only)

	// done is closed on reaching a terminal state (done/failed/canceled).
	done chan struct{}
}

func newJob(spec JobSpec, seq uint64) *Job {
	return &Job{
		ID:     spec.ID(),
		Spec:   spec,
		seq:    seq,
		state:  StateQueued,
		epoch:  -1,
		stream: NewStreamBuf(),
		done:   make(chan struct{}),
	}
}

// Stream returns the job's telemetry stream.
func (j *Job) Stream() *StreamBuf { return j.stream }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result and whether the job is done.
func (j *Job) Result() (*sim.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// terminal reports whether s is an end state. Callers hold j.mu.
func terminal(s JobState) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// finish moves the job to a terminal state and wakes waiters. Callers
// hold j.mu. Idempotent: a second terminal transition is ignored, so a
// late cancel cannot clobber a completed job.
func (j *Job) finish(s JobState) bool {
	if terminal(j.state) {
		return false
	}
	j.state = s
	j.settledAt = time.Now()
	j.stream.Close()
	close(j.done)
	return true
}

// Status is the wire snapshot GET /jobs/{id} returns.
type Status struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`
	Attempts int      `json:"attempts"`
	// Epoch is the last checkpointed epoch (-1 until one lands): coarse
	// progress for long jobs.
	Epoch     int      `json:"epoch"`
	StreamLen int      `json:"stream_len"`
	Failure   *Failure `json:"failure,omitempty"`
	// Children lists a sweep's child job IDs in grid order.
	Children []string `json:"children,omitempty"`
}

// Snapshot assembles the wire status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		Kind:      j.Spec.canonical().Kind,
		State:     j.state,
		Priority:  j.Spec.Priority,
		Attempts:  j.attempts,
		Epoch:     j.epoch,
		StreamLen: j.stream.Len(),
		Failure:   j.failure,
	}
	for _, c := range j.children {
		st.Children = append(st.Children, c.ID)
	}
	return st
}
