package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxSpecBytes bounds a submission body; anything larger is a client
// error, not a memory commitment.
const maxSpecBytes = 1 << 20

// heartbeatInterval paces keep-alive lines on an idle stream so proxies
// and clients can tell "no records yet" from "connection dead". A var so
// the tests can shorten it.
var heartbeatInterval = 2 * time.Second

// streamWriteTimeout is the per-chunk write deadline on the stream path:
// a client that stops reading is disconnected instead of parking a
// handler goroutine forever. A var so the tests can shorten it.
var streamWriteTimeout = 10 * time.Second

// Server is the HTTP facade over a Supervisor. Routes:
//
//	POST   /jobs               submit a JobSpec → {id, created, state}
//	GET    /jobs/{id}          status snapshot
//	GET    /jobs/{id}/result   result JSON (409 until done)
//	GET    /jobs/{id}/stream   chunked JSONL telemetry (+heartbeats), ?from=N resumes at a byte offset
//	DELETE /jobs/{id}          cancel
//	POST   /jobs/{id}/preempt  park a running job now (chaos/admin)
//	POST   /jobs/{id}/kill     arm a deterministic mid-job crash (chaos)
//	GET    /stats              operational counters
//	GET    /healthz            liveness (503 while draining)
type Server struct {
	sup *Supervisor
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(sup *Supervisor) *Server {
	s := &Server{sup: sup, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/preempt", s.handlePreempt)
	s.mux.HandleFunc("POST /jobs/{id}/kill", s.handleKill)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore errsink the response write error has no one left to tell
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Created is false on a dedup hit: an identical job already exists
	// (possibly already finished) and this ID aliases it.
	Created bool     `json:"created"`
	State   JobState `json:"state"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: decoding job spec: %w", err))
		return
	}
	j, created, err := s.sup.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Load shedding: tell the client when to come back rather than
		// queueing unboundedly. The hint is the mean drain time of one
		// queue slot at current throughput — a crude but honest guess.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{ID: j.ID, Created: created, State: j.State()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j, err := s.sup.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if sw, ok := j.Sweep(); ok {
		writeJSON(w, http.StatusOK, sw)
		return
	}
	if res, ok := j.Result(); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	st := j.Snapshot()
	switch st.State {
	case StateFailed:
		writeJSON(w, http.StatusGone, st)
	case StateCanceled:
		writeJSON(w, http.StatusGone, st)
	default:
		// Not done yet: 409 with the status so pollers get progress for
		// free.
		writeJSON(w, http.StatusConflict, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.sup.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (s *Server) handlePreempt(w http.ResponseWriter, r *http.Request) {
	if err := s.sup.Preempt(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "preempting"})
}

func (s *Server) handleKill(w http.ResponseWriter, r *http.Request) {
	if err := s.sup.Kill(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "armed"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sup.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.sup.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// heartbeatLine is emitted on idle streams. It deliberately looks like a
// telemetry record so line-oriented consumers can parse-and-drop it; it
// is written only to the live HTTP stream, never into the job's stored
// stream, so stored streams stay byte-deterministic.
var heartbeatLine = []byte(`{"record":"heartbeat"}` + "\n")

// rewindLine warns a live reader that the stream was rewound behind it
// (crash recovery): its tail may contain records the final stream will
// not. The client should re-fetch from its last checkpoint boundary (or
// 0).
var rewindLine = []byte(`{"record":"stream-rewind"}` + "\n")

// handleStream serves the job's telemetry as chunked JSONL from a byte
// offset, following the stream live until the job settles. Slow or dead
// clients hit the per-chunk write deadline and are disconnected; the
// writer side never blocks on them.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	off := 0
	if f := r.URL.Query().Get("from"); f != "" {
		if _, err := fmt.Sscanf(f, "%d", &off); err != nil || off < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad from offset %q", f))
			return
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	write := func(p []byte) bool {
		//lint:ignore errsink a failed deadline set degrades to a blocking write; the write error below still disconnects
		rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if _, err := w.Write(p); err != nil {
			return false
		}
		//lint:ignore errsink flush failure surfaces on the next write
		rc.Flush()
		return true
	}

	stream := j.Stream()
	gen := stream.Gen()
	heartbeat := time.NewTimer(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		data, g, done, wake := stream.ReadFrom(off)
		if g != gen {
			// The stream was rewound behind this reader (crash
			// recovery). Tell the client and stop; its next request
			// re-reads the canonical bytes.
			//lint:ignore errsink the connection is being abandoned either way
			write(rewindLine)
			return
		}
		if len(data) > 0 {
			if !write(data) {
				return
			}
			off += len(data)
			continue
		}
		if done {
			return
		}
		if !heartbeat.Stop() {
			select {
			case <-heartbeat.C:
			default:
			}
		}
		heartbeat.Reset(heartbeatInterval)
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			if !write(heartbeatLine) {
				return
			}
		}
	}
}
