package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is the load-shedding signal: the bounded queue is at
// capacity and the submission was refused. The HTTP layer maps it to
// 429 + Retry-After; the client owns the retry.
var ErrQueueFull = errors.New("serve: queue full")

// ErrQueueClosed reports a push or pop against a drained queue.
var ErrQueueClosed = errors.New("serve: queue closed")

// queue is the bounded prioritized job queue. Ordering is by descending
// Priority with FIFO tie-break (the submission sequence number), so one
// noisy high-priority client cannot reorder peers and low-priority work
// is never starved among equals. Capacity is hard: a full queue sheds
// instead of growing, which keeps the service's memory bounded no matter
// the offered load.
//
// notify is a capacity-1 wake signal: Push nudges it, Pop re-nudges it
// whenever it takes a job and leaves more behind, so one lost wakeup can
// never strand work while a worker sleeps. Canceled jobs are removed
// lazily: Pop skips any job whose state moved off queued while it waited.
type queue struct {
	mu     sync.Mutex
	heap   jobHeap
	limit  int
	closed bool
	notify chan struct{}
}

func newQueue(limit int) *queue {
	if limit < 1 {
		limit = 1
	}
	return &queue{limit: limit, notify: make(chan struct{}, 1)}
}

// Push enqueues a job, shedding with ErrQueueFull at capacity. force
// bypasses the capacity check — used only for re-admitting jobs the
// service already accepted (preemption and crash-retry requeues), so
// intake stays bounded while admitted work can always come back.
func (q *queue) Push(j *Job, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if !force && q.heap.Len() >= q.limit {
		return ErrQueueFull
	}
	heap.Push(&q.heap, j)
	q.nudge()
	return nil
}

// nudge wakes one parked Pop. Callers hold q.mu.
func (q *queue) nudge() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Pop blocks until a job is available or stop is closed. Jobs whose
// state moved off queued while they waited (client cancel, drain spool)
// are skipped. Returns nil when stopping or closed-and-empty.
func (q *queue) Pop(stop <-chan struct{}) *Job {
	for {
		// Honor stop before taking new work: once a drain begins, backlog
		// belongs to the spool, not to a worker racing the shutdown.
		select {
		case <-stop:
			return nil
		default:
		}
		q.mu.Lock()
		var j *Job
		if q.heap.Len() > 0 {
			j = heap.Pop(&q.heap).(*Job)
			if q.heap.Len() > 0 {
				q.nudge() // more work behind this one: keep the wake chain alive
			}
		}
		closed := q.closed
		q.mu.Unlock()
		if j != nil {
			if j.State() != StateQueued {
				continue // lazily dropped
			}
			return j
		}
		if closed {
			return nil
		}
		select {
		case <-stop:
			return nil
		case <-q.notify:
		}
	}
}

// Len returns the number of queued jobs (including lazily-dropped ones
// not yet popped).
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.heap.Len()
}

// Close refuses further pushes and drains the backlog: every job still
// in the heap is returned so the drain path can spool it.
func (q *queue) Close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := make([]*Job, 0, q.heap.Len())
	for q.heap.Len() > 0 {
		j := heap.Pop(&q.heap).(*Job)
		if j.State() == StateQueued {
			out = append(out, j)
		}
	}
	return out
}

// jobHeap orders by priority (descending), then submission sequence
// (ascending).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
