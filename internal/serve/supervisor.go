package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
)

// ErrDraining reports a submission against a supervisor that is shutting
// down; the HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// ErrUnknownJob reports a lookup for an ID the supervisor has never seen
// (or has evicted from the result cache).
var ErrUnknownJob = errors.New("serve: unknown job")

// Cancellation causes, distinguishable via errors.Is on the job's
// CancelError chain.
var (
	// causePreempt parks a long-running job so queued work gets a turn;
	// the job resumes from its checkpoint on any free worker.
	causePreempt = errors.New("serve: preempted")
	// causeDrain parks a job for spooling during graceful shutdown.
	causeDrain = errors.New("serve: draining")
	// causeClientCancel terminates a job at the client's request.
	causeClientCancel = errors.New("serve: canceled by client")
)

// crashError is a recovered panic: the attempt died mid-flight and its
// in-memory run state is gone, so recovery restores the job's last saved
// checkpoint and rewinds its stream to that boundary.
type crashError struct{ msg string }

func (e *crashError) Error() string { return "serve: attempt panicked: " + e.msg }

// permanentError marks failures retrying cannot fix (invalid
// configuration, checkpoint/config identity mismatch).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Config tunes the supervisor. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// Workers is the worker-goroutine count (default 2).
	Workers int
	// QueueLimit bounds the intake queue; submissions beyond it are shed
	// with ErrQueueFull (default 256).
	QueueLimit int
	// MaxAttempts bounds attempts per job, first try included (default 3).
	MaxAttempts int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// MaxBackoff caps a single backoff (default 5s).
	MaxBackoff time.Duration
	// RetryBudget caps a job's total backoff; beyond it the job fails
	// even with attempts left (default 30s).
	RetryBudget time.Duration
	// PreemptAfter parks a running job once it has run this long while
	// other work is queued; 0 disables elastic preemption.
	PreemptAfter time.Duration
	// CheckpointEvery is the crash-snapshot period in epochs (default
	// 200). Every job runs with periodic checkpoints at this cadence so
	// a panicked attempt resumes instead of restarting.
	CheckpointEvery int
	// SimWorkers is the per-run pipeline worker count (default 0 =
	// inline; the service scales by running jobs concurrently, not by
	// parallelising single runs).
	SimWorkers int
	// SpoolDir persists parked/queued jobs across restarts; "" disables
	// spooling (drain then abandons unfinished jobs).
	SpoolDir string
	// ResultTTL evicts terminal jobs — results, failure records and
	// telemetry streams — from the job table this long after they settle,
	// bounding memory over the process lifetime. An identical spec
	// resubmitted after eviction runs fresh (default 15m; negative
	// disables eviction).
	ResultTTL time.Duration
	// FrozenClock pins every job's telemetry clock to the Unix epoch so
	// streams are byte-deterministic — the mode the chaos suite and the
	// preemption byte-identity oracle run the service in.
	FrozenClock bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueLimit < 1 {
		c.QueueLimit = 256
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 30 * time.Second
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 200
	}
	if c.ResultTTL == 0 {
		c.ResultTTL = 15 * time.Minute
	}
	return c
}

// Stats is the supervisor's operational snapshot (GET /stats).
type Stats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Submitted int64 `json:"submitted"`
	Deduped   int64 `json:"deduped"`
	Shed      int64 `json:"shed"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Preempted int64 `json:"preempted"`
	Crashes   int64 `json:"crashes"`
	Retries   int64 `json:"retries"`
	Evicted   int64 `json:"evicted"`
	Draining  bool  `json:"draining"`
}

// Supervisor owns the job table, the queue and the worker pool. One
// instance serves the whole process; NewSupervisor starts the workers
// immediately and Drain stops them.
type Supervisor struct {
	cfg Config
	q   *queue

	mu     sync.Mutex
	jobs   map[string]*Job
	timers map[*time.Timer]struct{}

	// seq allocates the queue's FIFO tie-break numbers. Atomic rather
	// than s.mu-guarded: requeue bumps it while holding j.mu, and the
	// lock order everywhere else is s.mu → j.mu (Stats, preemptMonitor,
	// Drain, Submit), so taking s.mu there would be an ABBA deadlock.
	seq atomic.Uint64

	stop     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	submitted, deduped, shed, completed atomic.Int64
	failed, canceled, evicted           atomic.Int64
	preempted, crashes, retries         atomic.Int64
}

// NewSupervisor builds the supervisor, reloads any spooled jobs from
// cfg.SpoolDir, and starts the worker pool.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:    cfg,
		q:      newQueue(cfg.QueueLimit),
		jobs:   make(map[string]*Job),
		timers: make(map[*time.Timer]struct{}),
		stop:   make(chan struct{}),
	}
	if err := s.loadSpool(); err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	if cfg.PreemptAfter > 0 {
		s.wg.Add(1)
		go s.preemptMonitor()
	}
	if cfg.ResultTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// Submit validates, dedups and enqueues a job, returning the job and
// whether this submission created it (false = dedup hit on a live or
// completed identical job). Sweep jobs fan out into child sim jobs that
// each go through the queue individually; the parent occupies no worker.
func (s *Supervisor) Submit(spec JobSpec) (*Job, bool, error) {
	if s.draining.Load() {
		return nil, false, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	s.submitted.Add(1)
	id := spec.ID()

	s.mu.Lock()
	if old, ok := s.jobs[id]; ok {
		old.mu.Lock()
		st := old.state
		old.mu.Unlock()
		if st != StateFailed && st != StateCanceled {
			s.mu.Unlock()
			s.deduped.Add(1)
			return old, false, nil
		}
		// Failed and canceled jobs are tombstones, not cached results:
		// resubmitting the spec replaces them with a fresh run instead of
		// returning the dead job forever.
	}
	j := newJob(spec, s.seq.Add(1))
	s.jobs[id] = j
	s.mu.Unlock()

	if spec.canonical().Kind == KindSweep {
		return s.submitSweep(j)
	}
	if err := s.q.Push(j, false); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.shed.Add(1)
		}
		return nil, false, err
	}
	return j, true, nil
}

// submitSweep fans a sweep out into child sim jobs. Children dedup
// against existing jobs (including other sweeps' children and directly
// submitted sims); cells the cache already completed cost nothing. The
// whole fan-out is admitted or shed atomically enough for safety: a
// mid-fan-out queue-full sheds the parent and every child this sweep
// created that no one else references.
func (s *Supervisor) submitSweep(parent *Job) (*Job, bool, error) {
	specs := parent.Spec.children()
	// The parent holds one pending slot for the duration of the fan-out
	// so fast-settling children cannot drive pending to zero — and
	// trigger aggregation over a partial grid — while siblings are still
	// being admitted. The hold is released after the fan-out; exactly one
	// decrement observes pending hit zero, so the final aggregation runs
	// once, from either the release below or a later jobSettled.
	parent.mu.Lock()
	parent.pending = 1
	parent.mu.Unlock()
	var created []*Job
	admit := func() error {
		for _, cs := range specs {
			id := cs.ID()
			s.mu.Lock()
			child, ok := s.jobs[id]
			if ok {
				child.mu.Lock()
				// Failed/canceled children are tombstones: the new sweep
				// runs the cell fresh instead of inheriting a dead job.
				if child.state == StateFailed || child.state == StateCanceled {
					ok = false
				}
				child.mu.Unlock()
			}
			if !ok {
				child = newJob(cs, s.seq.Add(1))
				s.jobs[id] = child
				created = append(created, child)
			}
			// Back-link and pending++ must be atomic under child.mu: if
			// the child settles concurrently, jobSettled either sees the
			// parent and finds the matching increment, or sees neither. A
			// child that is already terminal is counted as settled by not
			// incrementing — back-linking it would earn a decrement that
			// was never paid for.
			parent.mu.Lock()
			//sync:ordered fan-out locks parent.mu before child.mu; the parent/child hierarchy is acyclic
			child.mu.Lock()
			if !terminal(child.state) {
				child.parents = append(child.parents, parent)
				parent.pending++
			}
			parent.children = append(parent.children, child)
			child.mu.Unlock()
			parent.mu.Unlock()
			s.mu.Unlock()
			if !ok {
				if err := s.q.Push(child, false); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := admit(); err != nil {
		// The fan-out hold is deliberately never released on this path:
		// pending stays >= 1, so settling children that still back-link
		// the dead parent can never trigger its aggregation.
		s.mu.Lock()
		delete(s.jobs, parent.ID)
		for _, c := range created {
			c.mu.Lock()
			dead := c.state == StateQueued && len(c.parents) == 1
			c.mu.Unlock()
			if dead {
				//sync:owned never-admitted children of a dead fan-out must not notify; the parent's aggregation hold is deliberate
				c.finishLocked(StateCanceled)
				delete(s.jobs, c.ID)
			}
		}
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.shed.Add(1)
		}
		return nil, false, err
	}
	parent.mu.Lock()
	if !terminal(parent.state) {
		// Guarded: a cancel that landed mid-fan-out must not be clobbered
		// back to running (finish would then pass its terminal check and
		// close done a second time).
		parent.state = StateRunning
	}
	parent.pending-- // release the fan-out hold
	ready := parent.pending == 0 && !terminal(parent.state)
	parent.mu.Unlock()
	if ready {
		s.aggregateSweep(parent)
	}
	return parent, true, nil
}

// finishLocked is Job.finish behind the job's own lock.
func (j *Job) finishLocked(st JobState) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finish(st)
}

// Get looks a job up by ID.
func (s *Supervisor) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	return nil, ErrUnknownJob
}

// Cancel terminates a job at the client's request: queued and parked
// jobs finish immediately, running jobs are cancelled at the next epoch
// boundary. Sweep parents cancel every child they solely own.
func (s *Supervisor) Cancel(id string) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	s.cancelJob(j, causeClientCancel)
	return nil
}

func (s *Supervisor) cancelJob(j *Job, cause error) {
	j.mu.Lock()
	var kids []*Job
	settled := false
	switch j.state {
	case StateRunning:
		if j.cancel != nil {
			j.cancel(cause) // the worker finishes the transition
		} else {
			// A sweep parent: terminal once its owned children are.
			kids = append(kids, j.children...)
		}
	case StateQueued, StateParked:
		settled = j.finish(StateCanceled)
	}
	j.mu.Unlock()
	if settled {
		s.canceled.Add(1)
		// A queued/parked job has no worker to run its settlement:
		// notify sweep parents (the pending decrement) and drop the
		// spool entry here, mirroring runJob's cancel path.
		s.jobSettled(j)
	}
	for _, c := range kids {
		c.mu.Lock()
		sole := len(c.parents) == 1
		c.mu.Unlock()
		if sole {
			s.cancelJob(c, cause)
		}
	}
}

// Preempt parks a running job now (the elastic monitor's trigger, also
// exposed for the chaos suite). The job checkpoints at the next epoch
// boundary and requeues.
func (s *Supervisor) Preempt(id string) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRunning && j.cancel != nil {
		j.cancel(causePreempt)
	}
	return nil
}

// Kill arms a deterministic mid-job crash: the job's next telemetry
// record panics the attempt, exercising the real panic-recovery and
// checkpoint-restore path. The chaos suite's stand-in for a dying
// worker.
func (s *Supervisor) Kill(id string) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashArmed = true
	return nil
}

// Stats snapshots the operational counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return Stats{
		Queued:    s.q.Len(),
		Running:   running,
		Submitted: s.submitted.Load(),
		Deduped:   s.deduped.Load(),
		Shed:      s.shed.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Canceled:  s.canceled.Load(),
		Preempted: s.preempted.Load(),
		Crashes:   s.crashes.Load(),
		Retries:   s.retries.Load(),
		Evicted:   s.evicted.Load(),
		Draining:  s.draining.Load(),
	}
}

// janitor periodically evicts expired terminal jobs so the job table —
// and with it every retained result and telemetry stream — stays bounded
// no matter how long the process runs.
func (s *Supervisor) janitor() {
	defer s.wg.Done()
	period := s.cfg.ResultTTL / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired drops terminal jobs that settled more than ResultTTL
// before now from the job table, returning the eviction count. Sweep
// aggregation is unaffected: parents hold their children by pointer, not
// through the table. An evicted ID reads as ErrUnknownJob and an
// identical resubmission runs fresh.
func (s *Supervisor) evictExpired(now time.Time) int {
	if s.cfg.ResultTTL <= 0 {
		return 0
	}
	n := 0
	s.mu.Lock()
	for id, j := range s.jobs {
		j.mu.Lock()
		dead := terminal(j.state) && !j.settledAt.IsZero() &&
			now.Sub(j.settledAt) >= s.cfg.ResultTTL
		j.mu.Unlock()
		if dead {
			delete(s.jobs, id)
			n++
		}
	}
	s.mu.Unlock()
	if n > 0 {
		s.evicted.Add(int64(n))
	}
	return n
}

// worker is one supervised execution loop. Panics inside a job are
// recovered by attempt; the loop itself only does state bookkeeping.
func (s *Supervisor) worker(id int) {
	defer s.wg.Done()
	for {
		j := s.q.Pop(s.stop)
		if j == nil {
			return
		}
		s.runJob(id, j)
	}
}

// runJob executes one attempt of a job and classifies the outcome:
// success, park (preempt/drain), client cancel, or failure with the
// retry policy applied.
func (s *Supervisor) runJob(worker int, j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j.state = StateRunning
	j.attempts++
	j.cancel = cancel
	j.worker = worker
	j.startedAt = time.Now()
	j.mu.Unlock()
	defer cancel(nil)

	res, err := s.attempt(j, ctx)

	//sync:balanced every branch unlocks; the default branch hands j.mu to classifyFailure, which releases it
	j.mu.Lock()
	j.cancel = nil
	switch {
	case err == nil:
		j.result = res
		j.clearResumeState()
		j.finish(StateDone)
		j.mu.Unlock()
		s.completed.Add(1)
		s.jobSettled(j)

	case isCancel(err):
		ce := asCancel(err)
		cause := ce.Cause
		if ce.Checkpoint != nil {
			// The stream holds records exactly through the stopping
			// epoch, so its current length IS the checkpoint boundary.
			//sync:nonblocking Encode frames into an in-memory bytes.Buffer; no real I/O happens under j.mu
			if enc := encodeCheckpoint(ce.Checkpoint); enc != nil {
				j.ckpt, j.ckptLen, j.epoch = enc, j.stream.Len(), ce.Epoch
			}
		}
		switch {
		case errors.Is(cause, causeClientCancel):
			j.finish(StateCanceled)
			j.mu.Unlock()
			s.canceled.Add(1)
			s.jobSettled(j)
		case errors.Is(cause, causeDrain):
			// Preemption and a run attempt are not failures: give the
			// attempt back.
			j.attempts--
			j.state = StateParked
			j.mu.Unlock() // drain spools parked jobs
		default: // preemption (elastic or explicit)
			j.attempts--
			j.state = StateParked
			j.mu.Unlock()
			s.preempted.Add(1)
			s.requeue(j)
		}

	default:
		//sync:nonblocking classifyFailure releases j.mu before the settle path touches the spool
		s.classifyFailure(j, err)
	}
}

// classifyFailure applies the retry policy to a failed attempt. Callers
// hold j.mu; it is released before returning.
func (s *Supervisor) classifyFailure(j *Job, err error) {
	var crash *crashError
	if errors.As(err, &crash) {
		s.crashes.Add(1)
	}
	var perm *permanentError
	permanent := errors.As(err, &perm)

	budgetLeft := s.cfg.RetryBudget - j.backoff
	if permanent || j.attempts >= s.cfg.MaxAttempts || budgetLeft <= 0 {
		j.failure = &Failure{
			Error:     err.Error(),
			Attempts:  j.attempts,
			Panicked:  crash != nil,
			BackoffMS: j.backoff.Milliseconds(),
		}
		j.finish(StateFailed)
		//sync:balanced callers hold j.mu by contract; classifyFailure releases it before returning
		j.mu.Unlock()
		s.failed.Add(1)
		s.jobSettled(j)
		return
	}

	// Exponential backoff with deterministic jitter, capped per-wait and
	// by the job's total budget.
	d := s.cfg.RetryBackoff << (j.attempts - 1)
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	d = jitter(j.ID, j.attempts, d)
	if d > budgetLeft {
		d = budgetLeft
	}
	j.backoff += d
	j.state = StateParked
	//sync:balanced callers hold j.mu by contract; classifyFailure releases it before returning
	j.mu.Unlock()
	s.retries.Add(1)

	s.mu.Lock()
	if s.draining.Load() {
		// Drain already swept the timer set; stay parked for spooling.
		s.mu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		// The lock acquisition orders this callback after the
		// registration below, so t is fully assigned here even when the
		// timer fires immediately. Deleting the fired timer keeps the
		// set from growing by one entry per retry forever.
		s.mu.Lock()
		delete(s.timers, t)
		s.mu.Unlock()
		s.requeue(j)
	})
	s.timers[t] = struct{}{}
	s.mu.Unlock()
}

// jitter scales d by a deterministic factor in [0.75, 1.25) derived from
// the job ID and attempt number: spread in the fleet, reproducible in
// tests.
func jitter(id string, attempt int, d time.Duration) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	frac := float64(h.Sum64()%1000) / 1000 // [0, 1)
	return time.Duration(float64(d) * (0.75 + frac/2))
}

// requeue re-admits a parked job (after preemption or backoff). It must
// not touch s.mu while holding j.mu — every other path takes them in the
// opposite order — which is why seq is an atomic counter.
func (s *Supervisor) requeue(j *Job) {
	j.mu.Lock()
	if j.state != StateParked {
		j.mu.Unlock()
		return
	}
	j.seq = s.seq.Add(1)
	j.state = StateQueued
	j.mu.Unlock()
	if err := s.q.Push(j, true); err != nil {
		// Queue closed mid-requeue: park again so drain spools the job.
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateParked
		}
		j.mu.Unlock()
	}
}

// clearResumeState drops the parked checkpoint. Callers hold j.mu.
func (j *Job) clearResumeState() { j.ckpt, j.ckptLen = nil, 0 }

// encodeCheckpoint frames a checkpoint into bytes, or nil on failure
// (the job then restarts from its previous resume point).
func encodeCheckpoint(cp *sim.Checkpoint) []byte {
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

func isCancel(err error) bool { return asCancel(err) != nil }

func asCancel(err error) *sim.CancelError {
	var ce *sim.CancelError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}

// attempt runs one try of the job with panic containment. It rewinds the
// stream to the resume boundary, restores the parked checkpoint if any,
// and runs under the job's cancellation context with periodic crash
// snapshots.
func (s *Supervisor) attempt(j *Job, ctx context.Context) (res *sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &crashError{fmt.Sprint(p)}
		}
	}()

	cfg, err := j.Spec.simConfig(s.cfg.SimWorkers)
	if err != nil {
		return nil, &permanentError{err}
	}

	j.mu.Lock()
	ckpt := j.ckpt
	ckptLen := j.ckptLen
	j.mu.Unlock()
	// A fresh attempt after a crash may have stream bytes past the last
	// snapshot; rewind so the final stream holds every record exactly
	// once.
	j.stream.Truncate(ckptLen)

	reg := telemetry.NewRegistry()
	if s.cfg.FrozenClock {
		epoch := time.Unix(0, 0)
		reg.SetClock(func() time.Time { return epoch })
	}
	reg.AddSink(&jobSink{sink: telemetry.NewJSONLSink(j.stream), job: j})
	cfg.Telemetry = reg
	cfg.Checkpoint = sim.CheckpointConfig{
		EveryEpochs: s.cfg.CheckpointEvery,
		Sink:        func(cp *sim.Checkpoint) error { return j.saveSnapshot(cp) },
	}

	r, err := sim.New(cfg)
	if err != nil {
		return nil, &permanentError{err}
	}
	if len(ckpt) > 0 {
		cp, err := sim.ReadCheckpoint(bytes.NewReader(ckpt))
		switch {
		case errors.Is(err, sim.ErrCorruptCheckpoint):
			// A damaged resume point costs the progress, not the job:
			// drop it and restart the run from scratch.
			j.mu.Lock()
			j.clearResumeState()
			j.epoch = -1
			j.mu.Unlock()
			j.stream.Truncate(0)
		case err != nil:
			return nil, err
		default:
			if rerr := r.Restore(cp); rerr != nil {
				return nil, &permanentError{rerr}
			}
		}
	}
	return r.RunContext(ctx)
}

// saveSnapshot is the periodic checkpoint sink: it stores the framed
// bytes and the stream boundary that belongs to them. The runner invokes
// it after the epoch's record is emitted (and our sink flushes per
// record), so the stream length here is exactly the boundary.
func (j *Job) saveSnapshot(cp *sim.Checkpoint) error {
	enc := encodeCheckpoint(cp)
	if enc == nil {
		return nil // a failed snapshot skips an update, never kills the run
	}
	j.mu.Lock()
	j.ckpt, j.ckptLen, j.epoch = enc, j.stream.Len(), cp.Epoch
	j.mu.Unlock()
	return nil
}

// jobSink adapts the JSONL sink for service use: every record is flushed
// through to the stream immediately (live streaming), and an armed chaos
// kill fires here, inside the run, so the panic takes the real recovery
// path.
type jobSink struct {
	sink *telemetry.JSONLSink
	job  *Job
}

func (s *jobSink) Emit(rec *telemetry.Record) error {
	s.job.mu.Lock()
	killed := s.job.crashArmed
	s.job.crashArmed = false
	s.job.mu.Unlock()
	if killed {
		panic("chaos: worker killed mid-job")
	}
	if err := s.sink.Emit(rec); err != nil {
		return err
	}
	return s.sink.Flush()
}

func (s *jobSink) Flush() error { return s.sink.Flush() }

// jobSettled runs after a job reaches a terminal state: sweep parents
// are notified and the spool entry (if any) is deleted.
func (s *Supervisor) jobSettled(j *Job) {
	s.removeSpool(j.ID)
	j.mu.Lock()
	parents := append([]*Job(nil), j.parents...)
	j.mu.Unlock()
	for _, p := range parents {
		p.mu.Lock()
		p.pending--
		ready := p.pending == 0 && !terminal(p.state)
		p.mu.Unlock()
		if ready {
			s.aggregateSweep(p)
		}
	}
}

// aggregateSweep assembles a sweep parent's result once every child is
// terminal: each cell exactly once, in grid order, with failed cells
// carrying their child's failure text (the service-side KeepGoing
// contract — partial sweeps complete, failures are reported, nothing is
// double-counted).
func (s *Supervisor) aggregateSweep(p *Job) {
	p.mu.Lock()
	sw := &SweepResult{}
	for _, c := range p.children {
		//sync:ordered aggregation locks parent.mu before each child.mu, the same acyclic hierarchy fan-out uses
		c.mu.Lock()
		cell := SweepCell{
			Benchmark: c.Spec.Benchmark,
			Policy:    c.Spec.Policy,
			JobID:     c.ID,
			State:     string(c.state),
		}
		switch c.state {
		case StateDone:
			sw.Done++
		case StateFailed:
			sw.Failed++
			if c.failure != nil {
				cell.Error = c.failure.Error
			}
		}
		c.mu.Unlock()
		sw.Cells = append(sw.Cells, cell)
	}
	p.sweep = sw
	st := StateDone
	if sw.Done == 0 && len(sw.Cells) > 0 {
		st = StateFailed
		p.failure = &Failure{Error: "serve: every sweep cell failed", Attempts: 1}
	}
	p.finish(st)
	p.mu.Unlock()
	if st == StateDone {
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.removeSpool(p.ID)
}

// Sweep returns a sweep parent's aggregate, if the job is one and done.
func (j *Job) Sweep() (*SweepResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sweep, j.sweep != nil
}

// preemptMonitor implements elastic preemption: while work is queued, a
// job that has held a worker longer than PreemptAfter is parked (it
// checkpoints and requeues behind its priority peers) so small jobs are
// not starved by long sweeps.
func (s *Supervisor) preemptMonitor() {
	defer s.wg.Done()
	period := s.cfg.PreemptAfter / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		if s.q.Len() == 0 {
			continue
		}
		s.mu.Lock()
		victims := make([]*Job, 0, 4)
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.state == StateRunning && j.cancel != nil && time.Since(j.startedAt) > s.cfg.PreemptAfter {
				victims = append(victims, j)
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		for _, j := range victims {
			j.mu.Lock()
			if j.state == StateRunning && j.cancel != nil {
				j.cancel(causePreempt)
			}
			j.mu.Unlock()
		}
	}
}

// Drain is graceful shutdown: stop intake, stop the workers (in-flight
// jobs are cancelled with checkpoint capture), then spool every
// unfinished job to disk so a restarted service resumes it. Idempotent;
// returns once the pool is down and the spool is written.
func (s *Supervisor) Drain() error {
	if s.draining.Swap(true) {
		return nil
	}
	// Stop the retry timers first: their jobs stay parked and spool.
	s.mu.Lock()
	for t := range s.timers {
		t.Stop()
	}
	s.timers = make(map[*time.Timer]struct{})
	s.mu.Unlock()

	close(s.stop)
	// Cancel running jobs with the drain cause; their workers park them.
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			j.cancel(causeDrain)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()

	// Everything still queued or parked gets spooled.
	leftovers := s.q.Close()
	spooled := make(map[string]bool)
	var firstErr error
	spool := func(j *Job) {
		if spooled[j.ID] {
			return
		}
		spooled[j.ID] = true
		if err := s.writeSpool(j); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, j := range leftovers {
		spool(j)
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		pending := j.state == StateQueued || j.state == StateParked ||
			(j.state == StateRunning && j.cancel == nil && !terminal(j.state))
		j.mu.Unlock()
		if pending {
			spool(j)
		}
	}
	return firstErr
}
