package serve

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestStreamBufTruncateGenPurity races concurrent followers against a
// writer that rewinds mid-stream: generation 0 is all 'A', a Truncate
// to zero bumps the generation, generation 1 is all 'B'. Every chunk a
// ReadFrom hands out must be pure for the generation returned by that
// same call — a reader may observe the rewind only as a clean gen bump,
// never as interleaved bytes from both attempts. Run under -race this
// also exercises the wake-channel replace against parked readers.
func TestStreamBufTruncateGenPurity(t *testing.T) {
	const (
		chunks    = 64
		chunkLen  = 32
		followers = 8
	)
	s := NewStreamBuf()

	var wg sync.WaitGroup
	for f := 0; f < followers; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			guard := time.NewTimer(30 * time.Second)
			defer guard.Stop()
			off, gen := 0, 0
			for {
				data, g, done, wake := s.ReadFrom(off)
				if g != gen {
					// Rewound while parked: the tail is invalid; restart
					// from the head of the new generation.
					gen, off = g, 0
					continue
				}
				want := byte('A' + g)
				for i, b := range data {
					if b != want {
						t.Errorf("gen %d chunk byte %d = %q, want %q (interleaved generations)", g, off+i, b, want)
						return
					}
				}
				off += len(data)
				if done && len(data) == 0 {
					return
				}
				if len(data) == 0 {
					select {
					case <-wake:
					case <-guard.C:
						t.Errorf("follower parked forever at gen %d off %d", gen, off)
						return
					}
				}
			}
		}()
	}

	writeAll := func(b byte) {
		chunk := make([]byte, chunkLen)
		for i := range chunk {
			chunk[i] = b
		}
		for i := 0; i < chunks; i++ {
			if _, err := s.Write(chunk); err != nil {
				t.Errorf("write: %v", err)
			}
			runtime.Gosched()
		}
	}
	writeAll('A')
	s.Truncate(0)
	writeAll('B')
	s.Close()
	wg.Wait()

	if got := s.Gen(); got != 1 {
		t.Errorf("final generation = %d, want 1", got)
	}
	final := s.Bytes()
	if len(final) != chunks*chunkLen {
		t.Errorf("final stream length = %d, want %d", len(final), chunks*chunkLen)
	}
	for i, b := range final {
		if b != 'B' {
			t.Fatalf("final stream byte %d = %q, want 'B'", i, b)
		}
	}
}
