// Package serve wraps the simulation engine in a long-running HTTP/JSON
// service: clients submit simulation or sweep jobs, get a content-derived
// job ID back, stream the run's telemetry as chunked JSONL, and fetch the
// result. The robustness layer is the point of the package — a bounded
// prioritized queue with load shedding, supervised workers that recover
// panics into job-failure records, capped exponential-backoff retries,
// checkpoint-backed preemption and crash recovery, and graceful drain on
// SIGTERM — see docs/SERVICE.md for the full lifecycle and the chaos
// suite that exercises it.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

// Job kinds.
const (
	KindSim   = "sim"   // one (policy, benchmark) simulation
	KindSweep = "sweep" // a policies × benchmarks grid, fanned out as child sim jobs
)

// JobSpec is the submission payload. Everything except Priority is the
// job's identity: two specs that canonicalise to the same JSON are the
// same job (same ID, shared execution, shared cached result) — the
// determinism guarantees of the engine make that dedup free. Priority
// only orders the queue and is excluded from the hash.
type JobSpec struct {
	// Kind selects "sim" (default) or "sweep".
	Kind string `json:"kind,omitempty"`
	// Policy and Benchmark name the run for sim jobs (core.ParsePolicy /
	// workload.ByName names, e.g. "pracVT", "lu_ncb").
	Policy    string `json:"policy,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	// Policies and Benchmarks define the grid for sweep jobs.
	Policies   []string `json:"policies,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Seed drives all stochastic components (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// DurationMS truncates the region of interest when positive.
	DurationMS int `json:"duration_ms,omitempty"`
	// WarmupEpochs overrides the default warmup when positive (0 keeps
	// the engine default).
	WarmupEpochs int `json:"warmup_epochs,omitempty"`
	// SensorNoiseC arms the sensor-noise stressor (°C, one sigma).
	SensorNoiseC float64 `json:"sensor_noise_c,omitempty"`
	// Faults is a fault schedule in the docs/ROBUSTNESS.md mini-language,
	// e.g. "vr-stuck-off@30:unit=12;sensor-noise@0:value=0.1".
	Faults string `json:"faults,omitempty"`
	// Priority orders the queue (higher runs sooner, FIFO within a
	// priority); it is NOT part of the job's identity.
	Priority int `json:"priority,omitempty"`
}

// canonical returns the spec with defaults filled in and identity-neutral
// fields zeroed, so equal jobs hash equally however sparsely the client
// spelled them.
func (s JobSpec) canonical() JobSpec {
	if s.Kind == "" {
		s.Kind = KindSim
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Priority = 0
	if len(s.Policies) == 0 {
		s.Policies = nil
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = nil
	}
	return s
}

// ID is the job's content hash: the first 16 hex digits of the SHA-256 of
// the canonical JSON encoding. encoding/json emits struct fields in
// declaration order, so the encoding — and the ID — is deterministic.
func (s JobSpec) ID() string {
	b, err := json.Marshal(s.canonical())
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshalling job spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// maxPriority bounds Priority so a client cannot starve the queue
// arithmetic with extreme values.
const maxPriority = 100

// Validate rejects malformed specs at the API boundary, before anything
// is queued: unknown kinds, unparseable policy/benchmark/fault names, and
// out-of-range knobs all fail fast with a client-attributable error.
func (s JobSpec) Validate() error {
	c := s.canonical()
	if s.Priority > maxPriority || s.Priority < -maxPriority {
		return fmt.Errorf("serve: priority %d out of range [%d, %d]", s.Priority, -maxPriority, maxPriority)
	}
	if s.DurationMS < 0 || s.WarmupEpochs < 0 {
		return fmt.Errorf("serve: negative duration or warmup")
	}
	if !(s.SensorNoiseC >= 0) {
		return fmt.Errorf("serve: sensor noise must be non-negative")
	}
	if s.Faults != "" {
		if _, err := fault.ParseSchedule(s.Faults); err != nil {
			return fmt.Errorf("serve: fault schedule: %w", err)
		}
	}
	switch c.Kind {
	case KindSim:
		if len(s.Policies) > 0 || len(s.Benchmarks) > 0 {
			return fmt.Errorf("serve: sim job must not set policies/benchmarks lists")
		}
		if _, err := core.ParsePolicy(c.policyName()); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if _, err := workload.ByName(c.benchmarkName()); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	case KindSweep:
		if len(c.Policies) == 0 || len(c.Benchmarks) == 0 {
			return fmt.Errorf("serve: sweep job needs non-empty policies and benchmarks lists")
		}
		for _, p := range c.Policies {
			if _, err := core.ParsePolicy(p); err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		}
		for _, b := range c.Benchmarks {
			if _, err := workload.ByName(b); err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		}
	default:
		return fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	return nil
}

func (s JobSpec) policyName() string {
	if s.Policy == "" {
		return "all-on"
	}
	return s.Policy
}

func (s JobSpec) benchmarkName() string {
	if s.Benchmark == "" {
		return "fft"
	}
	return s.Benchmark
}

// children expands a sweep spec into its child sim specs, in grid order
// (benchmarks outer, policies inner). Each child is an ordinary sim job —
// it goes through the same queue, dedup and retry machinery as a directly
// submitted one.
func (s JobSpec) children() []JobSpec {
	c := s.canonical()
	if c.Kind != KindSweep {
		return nil
	}
	kids := make([]JobSpec, 0, len(c.Benchmarks)*len(c.Policies))
	for _, b := range c.Benchmarks {
		for _, p := range c.Policies {
			kids = append(kids, JobSpec{
				Kind:         KindSim,
				Policy:       p,
				Benchmark:    b,
				Seed:         c.Seed,
				DurationMS:   c.DurationMS,
				WarmupEpochs: c.WarmupEpochs,
				SensorNoiseC: c.SensorNoiseC,
				Faults:       c.Faults,
				Priority:     s.Priority,
			})
		}
	}
	return kids
}

// simConfig builds the engine configuration for a validated sim spec.
// simWorkers is the per-run worker count the supervisor is configured
// with; telemetry and checkpointing are wired by the caller.
func (s JobSpec) simConfig(simWorkers int) (sim.Config, error) {
	c := s.canonical()
	p, err := core.ParsePolicy(c.policyName())
	if err != nil {
		return sim.Config{}, err
	}
	prof, err := workload.ByName(c.benchmarkName())
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(p, prof)
	cfg.Seed = c.Seed
	cfg.Workers = simWorkers
	if c.DurationMS > 0 {
		cfg.DurationMS = c.DurationMS
	}
	if c.WarmupEpochs > 0 {
		cfg.WarmupEpochs = c.WarmupEpochs
	}
	cfg.SensorNoiseC = c.SensorNoiseC
	if c.Faults != "" {
		sched, err := fault.ParseSchedule(c.Faults)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Faults = sched
	}
	return cfg, nil
}
