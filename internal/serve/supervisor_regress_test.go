package serve

// Regression tests for supervisor lifecycle edges: canceled queued work
// settling its sweep parent, tombstone resubmission, result-cache
// eviction, retry-timer cleanup, and the Stats/requeue lock ordering.

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// longSpec occupies a worker long enough for the test to act while it
// runs.
func longSpec(seed uint64) JobSpec {
	return JobSpec{Policy: "all-on", Benchmark: "fft", Seed: seed, DurationMS: 5000, WarmupEpochs: 2}
}

// occupyWorker parks a long job on the supervisor's only worker and
// returns a release func that cancels it and waits for it to settle.
func occupyWorker(t *testing.T, sup *Supervisor, seed uint64) func() {
	t.Helper()
	long, _, err := sup.Submit(longSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateRunning)
	return func() {
		if err := sup.Cancel(long.ID); err != nil {
			t.Fatal(err)
		}
		<-long.Done()
	}
}

func TestCancelQueuedSweepChildSettlesParent(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1})
	release := occupyWorker(t, sup, 900)
	defer release()

	parent, created, err := sup.Submit(JobSpec{
		Kind:         KindSweep,
		Policies:     []string{"all-on"},
		Benchmarks:   []string{"lu_ncb"},
		Seed:         901,
		DurationMS:   5,
		WarmupEpochs: 2,
	})
	if err != nil || !created {
		t.Fatalf("submit sweep: created=%v err=%v", created, err)
	}
	st := parent.Snapshot()
	if len(st.Children) != 1 {
		t.Fatalf("sweep has %d children, want 1", len(st.Children))
	}
	child, err := sup.Get(st.Children[0])
	if err != nil {
		t.Fatal(err)
	}
	if child.State() != StateQueued {
		t.Fatalf("child state %s, want queued behind the busy worker", child.State())
	}

	// Canceling the queued child must settle it AND propagate to the
	// parent: pending drops to zero and the sweep aggregates instead of
	// hanging in running forever.
	if err := sup.Cancel(child.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-parent.Done():
	case <-after(t, 30*time.Second):
		t.Fatalf("parent stuck in %s after its only child was canceled", parent.State())
	}
	sw, ok := parent.Sweep()
	if !ok || len(sw.Cells) != 1 {
		t.Fatalf("sweep aggregate missing: ok=%v sw=%+v", ok, sw)
	}
	if sw.Cells[0].State != string(StateCanceled) {
		t.Errorf("cell state %q, want canceled", sw.Cells[0].State)
	}
	if got := sup.Stats().Canceled; got < 1 {
		t.Errorf("canceled counter = %d, want >= 1", got)
	}
}

func TestResubmitAfterTombstoneRunsFresh(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1, MaxAttempts: 1})
	release := occupyWorker(t, sup, 910)

	// Armed while queued: the only attempt panics, so the job fails.
	doomed, created, err := sup.Submit(smallSpec(911))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if err := sup.Kill(doomed.ID); err != nil {
		t.Fatal(err)
	}
	// Canceled while queued: the other tombstone flavor.
	axed, _, err := sup.Submit(smallSpec(912))
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Cancel(axed.ID); err != nil {
		t.Fatal(err)
	}
	<-axed.Done()

	release()
	waitState(t, doomed, StateFailed)

	// Resubmission must replace the tombstones with fresh runs, not
	// return the dead jobs forever.
	fresh, created, err := sup.Submit(smallSpec(911))
	if err != nil {
		t.Fatal(err)
	}
	if !created || fresh == doomed {
		t.Fatalf("failed job not re-admitted: created=%v same=%v", created, fresh == doomed)
	}
	waitState(t, fresh, StateDone)
	fresh2, created2, err := sup.Submit(smallSpec(912))
	if err != nil {
		t.Fatal(err)
	}
	if !created2 || fresh2 == axed {
		t.Fatalf("canceled job not re-admitted: created=%v same=%v", created2, fresh2 == axed)
	}
	waitState(t, fresh2, StateDone)

	// A successfully completed job still dedups.
	again, created3, err := sup.Submit(smallSpec(911))
	if err != nil {
		t.Fatal(err)
	}
	if created3 || again != fresh {
		t.Fatalf("done job no longer dedups: created=%v", created3)
	}
}

func TestResultTTLEviction(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1})
	j, _, err := sup.Submit(smallSpec(920))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	if n := sup.evictExpired(time.Now()); n != 0 {
		t.Fatalf("evicted %d jobs before the TTL expired", n)
	}
	if n := sup.evictExpired(time.Now().Add(sup.cfg.ResultTTL + time.Minute)); n != 1 {
		t.Fatalf("evicted %d expired jobs, want 1", n)
	}
	if _, err := sup.Get(j.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("evicted job still resolvable: %v", err)
	}
	if got := sup.Stats().Evicted; got != 1 {
		t.Errorf("evicted counter = %d, want 1", got)
	}
	// An identical spec resubmitted after eviction runs fresh.
	j2, created, err := sup.Submit(smallSpec(920))
	if err != nil {
		t.Fatal(err)
	}
	if !created || j2 == j {
		t.Fatalf("post-eviction resubmit: created=%v same=%v", created, j2 == j)
	}
	waitState(t, j2, StateDone)
}

func TestRetryTimerRemovedAfterFiring(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1, MaxAttempts: 3, RetryBackoff: time.Millisecond})
	release := occupyWorker(t, sup, 930)

	// crashArmed is one-shot: the first attempt panics, the retry
	// succeeds — exactly one timer is created and must also be removed.
	j, _, err := sup.Submit(smallSpec(931))
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Kill(j.ID); err != nil {
		t.Fatal(err)
	}
	release()
	waitState(t, j, StateDone)
	if got := sup.Stats().Retries; got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	// The fired timer deletes itself before requeueing the job, so by
	// the time the job is done the set must be empty again.
	sup.mu.Lock()
	n := len(sup.timers)
	sup.mu.Unlock()
	if n != 0 {
		t.Errorf("%d retry timers leaked in the set after firing", n)
	}
}

func TestSweepOverFinishedCellsAggregatesImmediately(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 2})
	cellA := JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 940, DurationMS: 5, WarmupEpochs: 2}
	cellB := JobSpec{Policy: "all-on", Benchmark: "lu_ncb", Seed: 940, DurationMS: 5, WarmupEpochs: 2}
	for _, spec := range []JobSpec{cellA, cellB} {
		j, _, err := sup.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
	}

	// Every cell dedups onto an already-terminal child: the fan-out must
	// aggregate exactly once (via the fan-out hold release) without
	// clobbering or double-finishing anything.
	parent, created, err := sup.Submit(JobSpec{
		Kind:         KindSweep,
		Policies:     []string{"all-on"},
		Benchmarks:   []string{"fft", "lu_ncb"},
		Seed:         940,
		DurationMS:   5,
		WarmupEpochs: 2,
	})
	if err != nil || !created {
		t.Fatalf("submit sweep: created=%v err=%v", created, err)
	}
	waitState(t, parent, StateDone)
	sw, ok := parent.Sweep()
	if !ok || len(sw.Cells) != 2 || sw.Done != 2 || sw.Failed != 0 {
		t.Fatalf("sweep aggregate over cached cells: ok=%v %+v", ok, sw)
	}
	// Resubmitting the sweep dedups onto the done parent.
	p2, created2, err := sup.Submit(JobSpec{
		Kind:         KindSweep,
		Policies:     []string{"all-on"},
		Benchmarks:   []string{"fft", "lu_ncb"},
		Seed:         940,
		DurationMS:   5,
		WarmupEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if created2 || p2 != parent {
		t.Fatalf("done sweep no longer dedups: created=%v", created2)
	}
}

func TestStatsDuringRetriesAndPreemptionNoDeadlock(t *testing.T) {
	// Regression for the requeue/Stats ABBA lock inversion: hammer
	// Stats() (s.mu → j.mu) while backoff timers and the preempt monitor
	// drive requeues concurrently. Before the fix this wedged the whole
	// supervisor; now it must settle within the deadline.
	sup := newTestSupervisor(t, Config{
		Workers:         2,
		FrozenClock:     true,
		CheckpointEvery: 10,
		MaxAttempts:     10,
		RetryBackoff:    time.Millisecond,
		PreemptAfter:    10 * time.Millisecond,
	})
	j, _, err := sup.Submit(chaosSpec(950))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sup.Stats()
			}
		}
	}()
	for round := 0; round < 5; round++ {
		if j.State() == StateRunning {
			//nolint:errcheck — the job may settle concurrently
			sup.Kill(j.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-j.Done():
	case <-after(t, 60*time.Second):
		close(stop)
		wg.Wait()
		t.Fatalf("supervisor wedged: job stuck in %s while Stats was polled", j.State())
	}
	close(stop)
	wg.Wait()
	if st := j.State(); st != StateDone && st != StateFailed {
		t.Fatalf("job ended %s", st)
	}
}

// TestDrainLeavesNoTimersOrGoroutines: a drained supervisor must not
// leave its workers, janitor, preempt monitor, or an armed retry timer
// behind — the goroutine/timer lifecycle shape golife now enforces
// statically. The retry backoff is far enough out that Drain has to
// sweep the timer rather than win a race against it firing.
func TestDrainLeavesNoTimersOrGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	sup, err := NewSupervisor(Config{Workers: 2, MaxAttempts: 3, RetryBackoff: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := sup.Submit(smallSpec(940))
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Kill(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateParked)
	sup.mu.Lock()
	armed := len(sup.timers)
	sup.mu.Unlock()
	if armed != 1 {
		t.Fatalf("retry timers armed = %d, want 1", armed)
	}

	if err := sup.Drain(); err != nil {
		t.Fatal(err)
	}
	sup.mu.Lock()
	leaked := len(sup.timers)
	sup.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d retry timers leaked past drain", leaked)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked past drain: %d before, %d after", before, runtime.NumGoroutine())
}
