package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
)

// smallSpec is a cheap job: all-on (no profiling pass), a few epochs.
func smallSpec(seed uint64) JobSpec {
	return JobSpec{Policy: "all-on", Benchmark: "fft", Seed: seed, DurationMS: 5, WarmupEpochs: 2}
}

// after is time.After with a bounded lifetime: the timer is stopped on
// test cleanup instead of lingering until it fires, so timeout guards —
// especially ones armed per loop iteration — leave no live timers
// behind a passing test.
func after(t *testing.T, d time.Duration) <-chan time.Time {
	t.Helper()
	tm := time.NewTimer(d)
	t.Cleanup(func() { tm.Stop() })
	return tm.C
}

// waitState polls until the job reaches the wanted state or the deadline.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

// referenceStream runs the spec directly under a frozen clock and returns
// the canonical JSONL bytes an uninterrupted run produces.
func referenceStream(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	cfg, err := spec.simConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	epoch := time.Unix(0, 0)
	reg.SetClock(func() time.Time { return epoch })
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	reg.AddSink(sink)
	cfg.Telemetry = reg
	r, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sup.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return sup
}

func TestSpecIDCanonical(t *testing.T) {
	sparse := JobSpec{Benchmark: "fft", Policy: "all-on"}
	explicit := JobSpec{Kind: KindSim, Benchmark: "fft", Policy: "all-on", Seed: 1}
	if sparse.ID() != explicit.ID() {
		t.Error("defaults changed the job identity")
	}
	prio := JobSpec{Benchmark: "fft", Policy: "all-on", Priority: 50}
	if prio.ID() != sparse.ID() {
		t.Error("priority leaked into the job identity")
	}
	other := JobSpec{Benchmark: "fft", Policy: "all-on", Seed: 2}
	if other.ID() == sparse.ID() {
		t.Error("different seeds hashed identically")
	}
	if len(sparse.ID()) != 16 {
		t.Errorf("ID %q is not 16 hex chars", sparse.ID())
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"default sim", JobSpec{}, true},
		{"named sim", smallSpec(1), true},
		{"sweep", JobSpec{Kind: KindSweep, Policies: []string{"all-on"}, Benchmarks: []string{"fft"}}, true},
		{"faults", JobSpec{Faults: "vr-stuck-off@30:unit=12"}, true},
		{"bad kind", JobSpec{Kind: "bulk"}, false},
		{"bad policy", JobSpec{Policy: "warp-speed"}, false},
		{"bad benchmark", JobSpec{Benchmark: "crysis"}, false},
		{"bad faults", JobSpec{Faults: "meteor-strike@1"}, false},
		{"empty sweep", JobSpec{Kind: KindSweep}, false},
		{"sim with grid", JobSpec{Policies: []string{"all-on"}}, false},
		{"wild priority", JobSpec{Priority: 10000}, false},
		{"negative duration", JobSpec{DurationMS: -1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestSubmitRunFetchHTTP(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 2, FrozenClock: true})
	ts := httptest.NewServer(NewServer(sup))
	defer ts.Close()

	spec := smallSpec(11)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sub.Created || sub.ID != spec.ID() {
		t.Fatalf("submit: code=%d resp=%+v", resp.StatusCode, sub)
	}

	j, err := sup.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	// Status endpoint.
	var st Status
	getJSON(t, ts.URL+"/jobs/"+sub.ID, http.StatusOK, &st)
	if st.State != StateDone || st.ID != sub.ID {
		t.Fatalf("status: %+v", st)
	}

	// Result endpoint returns the simulation result.
	var res sim.Result
	getJSON(t, ts.URL+"/jobs/"+sub.ID+"/result", http.StatusOK, &res)
	if res.Epochs <= 0 {
		t.Fatalf("result has no epochs: %+v", res)
	}

	// Stream endpoint returns the canonical JSONL bytes.
	got := getBody(t, ts.URL+"/jobs/"+sub.ID+"/stream", http.StatusOK)
	want := referenceStream(t, spec)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed %d bytes differ from the %d-byte reference", len(got), len(want))
	}
	// Offset resume serves the exact suffix.
	half := len(want) / 2
	tail := getBody(t, fmt.Sprintf("%s/jobs/%s/stream?from=%d", ts.URL, sub.ID, half), http.StatusOK)
	if !bytes.Equal(tail, want[half:]) {
		t.Fatal("offset stream suffix differs")
	}

	// Resubmission dedups onto the finished job.
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 SubmitResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if sub2.Created || sub2.ID != sub.ID || sub2.State != StateDone {
		t.Fatalf("dedup resubmit: %+v", sub2)
	}

	// Unknown job is a 404, invalid spec a 400.
	getJSON(t, ts.URL+"/jobs/ffffffffffffffff", http.StatusNotFound, &apiError{})
	resp3, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"policy":"warp"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec returned %d, want 400", resp3.StatusCode)
	}
}

func getJSON(t *testing.T, url string, wantCode int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: code %d (want %d): %s", url, resp.StatusCode, wantCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func getBody(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: code %d, want %d", url, resp.StatusCode, wantCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLoadSheddingWith429(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1, QueueLimit: 1})
	ts := httptest.NewServer(NewServer(sup))
	defer ts.Close()

	// Occupy the only worker with a long job...
	long := JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 100, DurationMS: 5000, WarmupEpochs: 2}
	running, _, err := sup.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	// ...fill the queue...
	queued, _, err := sup.Submit(smallSpec(101))
	if err != nil {
		t.Fatal(err)
	}
	// ...and the next submission is shed with 429 + Retry-After.
	body, _ := json.Marshal(smallSpec(102))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if sup.Stats().Shed != 1 {
		t.Errorf("shed counter = %d, want 1", sup.Stats().Shed)
	}
	// A shed job leaves no residue: the same spec resubmits fine later.
	if err := sup.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if err := sup.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	<-running.Done()
	if _, _, err := sup.Submit(smallSpec(102)); err != nil {
		t.Fatalf("resubmit after shed failed: %v", err)
	}
}

func TestRetryBackoffAndFailureRecord(t *testing.T) {
	sup := newTestSupervisor(t, Config{
		Workers:      1,
		MaxAttempts:  2,
		RetryBackoff: 5 * time.Millisecond,
	})
	j, _, err := sup.Submit(smallSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the crash armed so every attempt panics at its first record.
	go func() {
		for {
			select {
			case <-j.Done():
				return
			default:
			}
			j.mu.Lock()
			if !terminal(j.state) {
				j.crashArmed = true
			}
			j.mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()
	waitState(t, j, StateFailed)
	st := j.Snapshot()
	if st.Failure == nil {
		t.Fatal("failed job carries no failure record")
	}
	if !st.Failure.Panicked {
		t.Error("panic not recorded in the failure")
	}
	if st.Failure.Attempts != 2 {
		t.Errorf("failure records %d attempts, want 2", st.Failure.Attempts)
	}
	if st.Failure.BackoffMS <= 0 {
		t.Errorf("no backoff budget recorded: %d ms", st.Failure.BackoffMS)
	}
	if !strings.Contains(st.Failure.Error, "panicked") {
		t.Errorf("failure text %q does not mention the panic", st.Failure.Error)
	}
	if sup.Stats().Crashes < 2 {
		t.Errorf("crash counter = %d, want >= 2", sup.Stats().Crashes)
	}
}

func TestCancelRunningJob(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1})
	ts := httptest.NewServer(NewServer(sup))
	defer ts.Close()
	j, _, err := sup.Submit(JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 300, DurationMS: 5000, WarmupEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	<-j.Done()
	if j.State() != StateCanceled {
		t.Fatalf("job ended %s, want canceled", j.State())
	}
	// The result endpoint reports the tombstone.
	var st Status
	getJSON(t, ts.URL+"/jobs/"+j.ID+"/result", http.StatusGone, &st)
	if st.State != StateCanceled {
		t.Fatalf("tombstone state %s", st.State)
	}
}

func TestSweepFanOutAggregateAndDedup(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 2})
	sweep := JobSpec{
		Kind:         KindSweep,
		Policies:     []string{"all-on"},
		Benchmarks:   []string{"fft", "lu_ncb"},
		Seed:         400,
		DurationMS:   5,
		WarmupEpochs: 2,
	}
	parent, created, err := sup.Submit(sweep)
	if err != nil || !created {
		t.Fatalf("submit sweep: created=%v err=%v", created, err)
	}
	waitState(t, parent, StateDone)
	sw, ok := parent.Sweep()
	if !ok {
		t.Fatal("done sweep has no aggregate")
	}
	if len(sw.Cells) != 2 || sw.Done != 2 || sw.Failed != 0 {
		t.Fatalf("sweep aggregate: %+v", sw)
	}
	for _, cell := range sw.Cells {
		child, err := sup.Get(cell.JobID)
		if err != nil {
			t.Fatalf("child %s unknown: %v", cell.JobID, err)
		}
		if _, done := child.Result(); !done {
			t.Fatalf("child %s not done", cell.JobID)
		}
	}
	// A standalone submission of one cell dedups onto the finished child.
	cellSpec := JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 400, DurationMS: 5, WarmupEpochs: 2}
	j, created, err := sup.Submit(cellSpec)
	if err != nil {
		t.Fatal(err)
	}
	if created || j.State() != StateDone {
		t.Fatalf("cell dedup: created=%v state=%s", created, j.State())
	}
}

func TestDrainSpoolsAndRestartResumes(t *testing.T) {
	spool := t.TempDir()
	spec := JobSpec{Policy: "all-on", Benchmark: "fft", Seed: 500, DurationMS: 400, WarmupEpochs: 2}
	queuedSpec := smallSpec(501)
	want := referenceStream(t, spec)

	sup, err := NewSupervisor(Config{Workers: 1, SpoolDir: spool, FrozenClock: true, CheckpointEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := sup.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	qj, _, err := sup.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the running job make real progress before draining.
	deadline := time.Now().Add(30 * time.Second)
	for j.Stream().Len() < 2000 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := sup.Drain(); err != nil {
		t.Fatal(err)
	}
	if j.State() == StateDone {
		t.Skip("job finished before the drain landed; nothing to resume")
	}
	for _, id := range []string{j.ID, qj.ID} {
		if _, err := os.Stat(filepath.Join(spool, id+".job")); err != nil {
			t.Fatalf("job %s not spooled: %v", id, err)
		}
	}

	// Restart: a fresh supervisor over the same spool resumes both jobs.
	sup2 := newTestSupervisor(t, Config{Workers: 1, SpoolDir: spool, FrozenClock: true, CheckpointEvery: 50})
	j2, err := sup2.Get(j.ID)
	if err != nil {
		t.Fatalf("resumed job missing after restart: %v", err)
	}
	qj2, err := sup2.Get(qj.ID)
	if err != nil {
		t.Fatalf("queued job missing after restart: %v", err)
	}
	waitState(t, j2, StateDone)
	waitState(t, qj2, StateDone)
	got := j2.Stream().Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched post-restart stream (%d bytes) differs from the uninterrupted reference (%d bytes)", len(got), len(want))
	}
	// Settled jobs clean their spool entries up.
	if _, err := os.Stat(filepath.Join(spool, j.ID+".job")); !os.IsNotExist(err) {
		t.Errorf("settled job's spool entry still present (err=%v)", err)
	}
}

func TestHealthAndStats(t *testing.T) {
	sup := newTestSupervisor(t, Config{Workers: 1})
	ts := httptest.NewServer(NewServer(sup))
	defer ts.Close()
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	j, _, err := sup.Submit(smallSpec(600))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	var st Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBenchReportCheck(t *testing.T) {
	good := &BenchReport{
		Schema: BenchSchema,
		Small: SmallJobsBench{
			Jobs: 1000, Completed: 1000, P50MS: 5, P99MS: 20, Throughput: 100,
		},
		Preempt: PreemptBench{Preempts: 2, ByteIdentical: true, StreamBytes: 10000},
	}
	if err := Check(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := *good
	bad.Preempt.ByteIdentical = false
	if err := Check(&bad); err == nil {
		t.Error("non-identical preempt stream passed the gate")
	}
	bad = *good
	bad.Small.Completed = 999
	if err := Check(&bad); err == nil {
		t.Error("lost job passed the gate")
	}
	bad = *good
	bad.Small.Jobs = 10
	if err := Check(&bad); err == nil {
		t.Error("undersized bench passed the gate")
	}
	bad = *good
	bad.Schema = "nope"
	if err := Check(&bad); err == nil {
		t.Error("wrong schema passed the gate")
	}

	// Round-trip through the JSON file format.
	var buf bytes.Buffer
	if err := WriteReport(&buf, good); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(back); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
}
