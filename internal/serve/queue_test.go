package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func testJob(prio int, seq uint64) *Job {
	return newJob(JobSpec{Policy: "all-on", Benchmark: "fft", Seed: seq + 1, Priority: prio}, seq)
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := newQueue(16)
	stop := make(chan struct{})
	// Same priority keeps submission order; higher priority jumps ahead.
	jobs := []*Job{testJob(0, 1), testJob(0, 2), testJob(5, 3), testJob(-1, 4), testJob(5, 5)}
	for _, j := range jobs {
		if err := q.Push(j, false); err != nil {
			t.Fatal(err)
		}
	}
	wantSeq := []uint64{3, 5, 1, 2, 4}
	for i, want := range wantSeq {
		j := q.Pop(stop)
		if j.seq != want {
			t.Fatalf("pop %d returned seq %d, want %d", i, j.seq, want)
		}
	}
}

func TestQueueShedsAtCapacity(t *testing.T) {
	q := newQueue(2)
	if err := q.Push(testJob(0, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob(0, 2), false); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob(0, 3), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity push returned %v, want ErrQueueFull", err)
	}
	// Re-admission of already-accepted work bypasses the cap.
	if err := q.Push(testJob(0, 4), true); err != nil {
		t.Fatalf("forced push failed: %v", err)
	}
	if q.Len() != 3 {
		t.Fatalf("queue length %d, want 3", q.Len())
	}
}

func TestQueueSkipsCanceled(t *testing.T) {
	q := newQueue(8)
	a, b := testJob(0, 1), testJob(0, 2)
	if err := q.Push(a, false); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(b, false); err != nil {
		t.Fatal(err)
	}
	a.finishLocked(StateCanceled)
	stop := make(chan struct{})
	if j := q.Pop(stop); j != b {
		t.Fatalf("pop skipped wrong job: got seq %d", j.seq)
	}
}

func TestQueuePopBlocksUntilPushOrStop(t *testing.T) {
	q := newQueue(8)
	stop := make(chan struct{})
	got := make(chan *Job, 1)
	go func() { got <- q.Pop(stop) }()
	select {
	case j := <-got:
		t.Fatalf("pop returned %v from an empty queue", j)
	case <-after(t, 20*time.Millisecond):
	}
	want := testJob(0, 9)
	if err := q.Push(want, false); err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-got:
		if j != want {
			t.Fatal("pop returned the wrong job")
		}
	case <-after(t, 2*time.Second):
		t.Fatal("pop never woke after push")
	}

	// And stop unblocks a parked pop with nil.
	go func() { got <- q.Pop(stop) }()
	close(stop)
	select {
	case j := <-got:
		if j != nil {
			t.Fatalf("stopped pop returned %v, want nil", j)
		}
	case <-after(t, 2*time.Second):
		t.Fatal("pop never observed stop")
	}
}

func TestQueueWakeChain(t *testing.T) {
	// Two parked workers, two quick pushes: both must be served even
	// though the notify channel holds a single token.
	q := newQueue(8)
	stop := make(chan struct{})
	got := make(chan *Job, 2)
	for i := 0; i < 2; i++ {
		go func() { got <- q.Pop(stop) }()
	}
	time.Sleep(10 * time.Millisecond) // let both park
	if err := q.Push(testJob(0, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob(0, 2), false); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		select {
		case j := <-got:
			seen[j.seq] = true
		case <-after(t, 2*time.Second):
			t.Fatalf("only %d of 2 workers woke: %v", i, seen)
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("wrong jobs served: %v", seen)
	}
}

func TestQueueCloseReturnsBacklog(t *testing.T) {
	q := newQueue(8)
	for i := 0; i < 3; i++ {
		if err := q.Push(testJob(0, uint64(i+1)), false); err != nil {
			t.Fatal(err)
		}
	}
	left := q.Close()
	if len(left) != 3 {
		t.Fatalf("close returned %d jobs, want 3", len(left))
	}
	if err := q.Push(testJob(0, 9), true); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close returned %v, want ErrQueueClosed", err)
	}
	stop := make(chan struct{})
	if j := q.Pop(stop); j != nil {
		t.Fatalf("pop after close returned %v, want nil", j)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 5; attempt++ {
		id := fmt.Sprintf("job-%d", attempt)
		a := jitter(id, attempt, base)
		b := jitter(id, attempt, base)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if a < lo || a >= hi {
			t.Fatalf("jitter %v outside [%v, %v)", a, lo, hi)
		}
	}
}
