package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
)

// BenchSchema tags BENCH_serve.json; Check rejects anything else.
const BenchSchema = "thermogater/bench-serve/v1"

// BenchReport is the committed service baseline: submit→done latency
// percentiles and throughput for a large burst of small concurrent jobs,
// plus the preemption byte-identity oracle for a resumable long job.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	QueueLimit int    `json:"queue_limit"`

	Small   SmallJobsBench `json:"small_jobs"`
	Preempt PreemptBench   `json:"preempt"`
}

// SmallJobsBench measures the service under a burst of small jobs, every
// one with a distinct seed so dedup cannot collapse the load.
type SmallJobsBench struct {
	Jobs       int     `json:"jobs"`
	DurationMS int     `json:"duration_ms"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	WallS      float64 `json:"wall_s"`
}

// PreemptBench records the resumable-long-job oracle: a job preempted
// mid-flight (at least once) whose final telemetry stream must equal an
// uninterrupted run's, byte for byte.
type PreemptBench struct {
	DurationMS    int  `json:"duration_ms"`
	Preempts      int  `json:"preempts"`
	ByteIdentical bool `json:"byte_identical"`
	StreamBytes   int  `json:"stream_bytes"`
}

// BenchOptions sizes a bench run.
type BenchOptions struct {
	// Jobs is the small-burst size (default 1000).
	Jobs int
	// DurationMS is each small job's simulated length (default 10).
	DurationMS int
	// Workers is the supervisor pool size (default 2×GOMAXPROCS, min 4:
	// small jobs are short, so queue latency dominates and extra workers
	// keep the pipeline full).
	Workers int
	// LongDurationMS is the preemption oracle's run length (default 200).
	LongDurationMS int
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Jobs <= 0 {
		o.Jobs = 1000
	}
	if o.DurationMS <= 0 {
		o.DurationMS = 10
	}
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.GOMAXPROCS(0)
		if o.Workers < 4 {
			o.Workers = 4
		}
	}
	if o.LongDurationMS <= 0 {
		o.LongDurationMS = 200
	}
	return o
}

// RunBench drives a fresh in-process supervisor through the benchmark
// and assembles the report. log, when non-nil, receives progress lines.
func RunBench(opts BenchOptions, log io.Writer) (*BenchReport, error) {
	opts = opts.withDefaults()
	rep := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    opts.Workers,
		QueueLimit: opts.Jobs + 16,
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}

	// --- Small-jobs burst ---------------------------------------------
	sup, err := NewSupervisor(Config{
		Workers:    opts.Workers,
		QueueLimit: opts.Jobs + 16,
	})
	if err != nil {
		return nil, err
	}
	logf("bench: submitting %d small jobs (%d ms each) to %d workers...", opts.Jobs, opts.DurationMS, opts.Workers)
	start := time.Now()
	submitAt := make(map[string]time.Time, opts.Jobs)
	jobs := make([]*Job, 0, opts.Jobs)
	shed := 0
	for i := 0; i < opts.Jobs; i++ {
		spec := JobSpec{
			Policy:       "all-on",
			Benchmark:    "fft",
			Seed:         uint64(i + 1), // distinct seeds: dedup cannot collapse the burst
			DurationMS:   opts.DurationMS,
			WarmupEpochs: 2,
		}
		j, _, err := sup.Submit(spec)
		if err != nil {
			shed++
			continue
		}
		submitAt[j.ID] = time.Now()
		jobs = append(jobs, j)
	}
	latencies := make([]float64, 0, len(jobs))
	completed := 0
	for _, j := range jobs {
		<-j.Done()
		if j.State() == StateDone {
			completed++
			latencies = append(latencies, float64(time.Since(submitAt[j.ID]).Microseconds())/1000)
		}
	}
	wall := time.Since(start)
	if err := sup.Drain(); err != nil {
		return nil, err
	}
	sort.Float64s(latencies)
	rep.Small = SmallJobsBench{
		Jobs:       opts.Jobs,
		DurationMS: opts.DurationMS,
		Completed:  completed,
		Shed:       shed,
		P50MS:      percentile(latencies, 0.50),
		P99MS:      percentile(latencies, 0.99),
		Throughput: float64(completed) / wall.Seconds(),
		WallS:      wall.Seconds(),
	}
	logf("bench: %d/%d done in %.1fs (p50 %.1fms, p99 %.1fms, %.1f jobs/s)",
		completed, opts.Jobs, wall.Seconds(), rep.Small.P50MS, rep.Small.P99MS, rep.Small.Throughput)

	// --- Preemption byte-identity oracle ------------------------------
	logf("bench: preemption oracle (%d ms run, frozen clock)...", opts.LongDurationMS)
	pre, err := benchPreempt(opts.LongDurationMS)
	if err != nil {
		return nil, err
	}
	rep.Preempt = *pre
	logf("bench: preempted %d time(s), byte_identical=%v (%d bytes)", pre.Preempts, pre.ByteIdentical, pre.StreamBytes)
	return rep, nil
}

// benchPreempt runs the resumable-long-job oracle: a reference run with
// no interruptions, then the same job through a supervisor that preempts
// it mid-flight; the final streams must match byte for byte.
func benchPreempt(durationMS int) (*PreemptBench, error) {
	spec := JobSpec{
		Policy:       "pracVT",
		Benchmark:    "lu_ncb",
		Seed:         7,
		DurationMS:   durationMS,
		WarmupEpochs: 5,
	}

	// Reference: same config, frozen clock, uninterrupted.
	cfg, err := spec.simConfig(0)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	epoch := time.Unix(0, 0)
	reg.SetClock(func() time.Time { return epoch })
	var ref bytes.Buffer
	sink := telemetry.NewJSONLSink(&ref)
	reg.AddSink(sink)
	cfg.Telemetry = reg
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := r.Run(); err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}

	// Service run: preempt mid-flight, let it resume, compare.
	sup, err := NewSupervisor(Config{
		Workers:         2,
		FrozenClock:     true,
		CheckpointEvery: 50,
	})
	if err != nil {
		return nil, err
	}
	j, _, err := sup.Submit(spec)
	if err != nil {
		return nil, err
	}
	preempts := 0
	for j.State() != StateDone && preempts < 2 {
		// Wait for some progress, then park it.
		deadline := time.Now().Add(30 * time.Second)
		for j.Stream().Len() < (preempts+1)*2048 && time.Now().Before(deadline) {
			if j.State() == StateDone {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if j.State() == StateDone {
			break
		}
		if err := sup.Preempt(j.ID); err != nil {
			return nil, err
		}
		preempts++
	}
	<-j.Done()
	if st := j.State(); st != StateDone {
		return nil, fmt.Errorf("serve: preemption oracle job ended %s", st)
	}
	got := j.Stream().Bytes()
	if err := sup.Drain(); err != nil {
		return nil, err
	}
	return &PreemptBench{
		DurationMS:    durationMS,
		Preempts:      preempts,
		ByteIdentical: bytes.Equal(got, ref.Bytes()),
		StreamBytes:   len(got),
	}, nil
}

// percentile returns the p-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteReport writes the report as indented JSON.
func WriteReport(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a committed report.
func ReadReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("serve: parsing bench report: %w", err)
	}
	return &r, nil
}

// Check is the CI gate over a committed BENCH_serve.json: the report
// must be self-consistent and must witness the service's contract —
// ≥1000 small jobs all completed, sane latency ordering, and a
// preempted-then-resumed stream that matched the uninterrupted run byte
// for byte.
func Check(r *BenchReport) error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("serve: bench schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.Small.Jobs < 1000 {
		return fmt.Errorf("serve: bench ran %d small jobs, the gate needs >= 1000", r.Small.Jobs)
	}
	if r.Small.Completed != r.Small.Jobs-r.Small.Shed {
		return fmt.Errorf("serve: %d of %d admitted jobs completed — jobs were lost",
			r.Small.Completed, r.Small.Jobs-r.Small.Shed)
	}
	if r.Small.Completed < 1000 {
		return fmt.Errorf("serve: only %d jobs completed, the gate needs >= 1000", r.Small.Completed)
	}
	if !(r.Small.P50MS > 0) || !(r.Small.P99MS >= r.Small.P50MS) {
		return fmt.Errorf("serve: implausible latency percentiles p50=%.3f p99=%.3f", r.Small.P50MS, r.Small.P99MS)
	}
	if !(r.Small.Throughput > 0) {
		return fmt.Errorf("serve: non-positive throughput %.3f", r.Small.Throughput)
	}
	if r.Preempt.Preempts < 1 {
		return fmt.Errorf("serve: preemption oracle never preempted")
	}
	if !r.Preempt.ByteIdentical {
		return fmt.Errorf("serve: preempted run's stream was not byte-identical to the uninterrupted run")
	}
	if r.Preempt.StreamBytes <= 0 {
		return fmt.Errorf("serve: preemption oracle recorded an empty stream")
	}
	return nil
}
