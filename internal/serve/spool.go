package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// spoolSchema tags spool entries; loadSpool skips anything else.
const spoolSchema = "thermogater/serve-spool/v1"

// spoolEntry is the on-disk form of an unfinished job: its identity
// (spec), its retry accounting, and its exact resume point — the framed
// checkpoint plus the stream prefix that belongs to it. A restarted
// service re-admits the job and continues byte-identically.
type spoolEntry struct {
	Schema   string  `json:"schema"`
	Spec     JobSpec `json:"spec"`
	Attempts int     `json:"attempts"`
	Epoch    int     `json:"epoch"`
	// Stream is the job's telemetry stream up to the checkpoint
	// boundary (base64 via encoding/json's []byte rule).
	Stream []byte `json:"stream,omitempty"`
	// Ckpt is the framed checkpoint (sim.Checkpoint.Encode bytes).
	Ckpt []byte `json:"ckpt,omitempty"`
}

func (s *Supervisor) spoolPath(id string) string {
	return filepath.Join(s.cfg.SpoolDir, id+".job")
}

// writeSpool persists one unfinished job atomically (tmp + rename), so a
// kill mid-write leaves either the old entry or none — never a torn one.
func (s *Supervisor) writeSpool(j *Job) error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.SpoolDir, 0o755); err != nil {
		return err
	}
	j.mu.Lock()
	e := spoolEntry{
		Schema:   spoolSchema,
		Spec:     j.Spec,
		Attempts: j.attempts,
		Epoch:    j.epoch,
		Ckpt:     j.ckpt,
	}
	if j.ckptLen > 0 {
		e.Stream = j.stream.Bytes()
		if len(e.Stream) > j.ckptLen {
			e.Stream = e.Stream[:j.ckptLen]
		}
	}
	j.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	path := s.spoolPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// removeSpool deletes a settled job's entry; a missing file is fine.
func (s *Supervisor) removeSpool(id string) {
	if s.cfg.SpoolDir == "" {
		return
	}
	//lint:ignore errsink best-effort cleanup: a stale entry is re-settled on the next load
	os.Remove(s.spoolPath(id))
}

// loadSpool re-admits every spooled job at startup. Sweep parents
// re-expand through Submit's fan-out (their children dedup against
// spooled child entries); sim jobs restore their stream prefix and
// checkpoint and queue for resumption. Unreadable entries are skipped
// with their files left in place for forensics — one bad entry must not
// keep the service down.
func (s *Supervisor) loadSpool() error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	// Two passes: sim jobs first so sweep parents' fan-out dedups onto
	// the restored (checkpoint-carrying) children instead of creating
	// fresh ones.
	var parents []spoolEntry
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".job") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.cfg.SpoolDir, de.Name()))
		if err != nil {
			continue
		}
		var e spoolEntry
		if json.Unmarshal(b, &e) != nil || e.Schema != spoolSchema {
			continue
		}
		if e.Spec.canonical().Kind == KindSweep {
			parents = append(parents, e)
			continue
		}
		if err := s.admitSpooled(e); err != nil {
			return fmt.Errorf("serve: re-admitting spooled job %s: %w", e.Spec.ID(), err)
		}
	}
	for _, e := range parents {
		if _, _, err := s.Submit(e.Spec); err != nil {
			return fmt.Errorf("serve: re-admitting spooled sweep %s: %w", e.Spec.ID(), err)
		}
	}
	return nil
}

// admitSpooled recreates one sim job from its spool entry and queues it.
func (s *Supervisor) admitSpooled(e spoolEntry) error {
	if err := e.Spec.Validate(); err != nil {
		return err
	}
	id := e.Spec.ID()
	s.mu.Lock()
	if _, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return nil
	}
	j := newJob(e.Spec, s.seq.Add(1))
	j.attempts = e.Attempts
	j.epoch = e.Epoch
	if len(e.Ckpt) > 0 {
		j.ckpt = e.Ckpt
		if len(e.Stream) > 0 {
			//lint:ignore errsink StreamBuf.Write cannot fail
			j.stream.Write(e.Stream)
			j.ckptLen = len(e.Stream)
		}
	}
	s.jobs[id] = j
	s.mu.Unlock()
	return s.q.Push(j, true)
}
