package serve

import "sync"

// StreamBuf is a job's telemetry stream: an append-only byte buffer that
// any number of readers can follow concurrently while one writer (the
// job's current run attempt) appends. Readers poll by offset and park on
// a wake channel that is closed-and-replaced on every append, so a slow
// or stalled client never blocks the writer — backpressure is shed at the
// HTTP layer (write deadlines), never propagated into the simulation.
//
// A crash recovery rewinds the stream to the last checkpoint boundary
// (Truncate) and bumps the generation; a reader that parked across the
// rewind observes the generation change and can tell its tail may no
// longer be valid.
type StreamBuf struct {
	mu     sync.Mutex
	buf    []byte
	gen    int
	closed bool
	wake   chan struct{}
}

// NewStreamBuf returns an empty open stream.
func NewStreamBuf() *StreamBuf {
	return &StreamBuf{wake: make(chan struct{})}
}

// Write appends p; it implements io.Writer so a telemetry JSONL sink can
// write straight into the stream.
func (s *StreamBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, p...)
	s.broadcast()
	return len(p), nil
}

// broadcast wakes every parked reader. Callers hold s.mu.
func (s *StreamBuf) broadcast() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Truncate rewinds the stream to n bytes (the last checkpoint boundary)
// and bumps the generation. Used by crash recovery so a re-run attempt
// appends exactly where the restored checkpoint left off and the final
// stream holds no duplicated records.
func (s *StreamBuf) Truncate(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(s.buf) {
		// Nothing to rewind: the resume-attempt preamble truncates to the
		// current boundary, which must not invalidate live readers.
		return
	}
	s.buf = s.buf[:n]
	s.gen++
	s.broadcast()
}

// Close marks the stream complete: no further appends will come and
// readers at the tail should stop waiting.
func (s *StreamBuf) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.broadcast()
	}
}

// Len returns the current stream length in bytes.
func (s *StreamBuf) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Bytes returns a copy of the whole stream.
func (s *StreamBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}

// ReadFrom returns the bytes at [off, len), the generation they belong
// to, whether the stream is complete, and a channel that is closed on the
// next append/truncate/close. A reader loop is:
//
//	off, gen := 0, stream.Gen()
//	for {
//		data, g, done, wake := stream.ReadFrom(off)
//		if g != gen { /* rewound: tail invalid */ }
//		... write data ...; off += len(data)
//		if done && len(data) == 0 { return }
//		<-wake (or a heartbeat/cancel timeout)
//	}
func (s *StreamBuf) ReadFrom(off int) (data []byte, gen int, done bool, wake <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 {
		off = 0
	}
	if off < len(s.buf) {
		data = append([]byte(nil), s.buf[off:]...)
	}
	return data, s.gen, s.closed, s.wake
}

// Gen returns the current generation (bumped by every Truncate).
func (s *StreamBuf) Gen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}
