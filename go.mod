module thermogater

go 1.22
