package thermogater

import (
	"testing"
)

func TestRunBasic(t *testing.T) {
	res, err := Run("oracT", "lu_ncb", WithDuration(120), WithWarmup(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "oracT" || res.Benchmark != "lu_ncb" {
		t.Errorf("result labelled %s/%s", res.Policy, res.Benchmark)
	}
	if res.MaxTempC < 40 || res.MaxTempC > 110 {
		t.Errorf("Tmax %v implausible", res.MaxTempC)
	}
	if res.AvgEta < 0.85 || res.AvgEta > PeakEfficiency+1e-9 {
		t.Errorf("eta %v outside (0.85, peak]", res.AvgEta)
	}
}

func TestRunAcceptsShortNames(t *testing.T) {
	res, err := Run("all-on", "oc_cp", WithDuration(80), WithWarmup(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "ocean_cp" {
		t.Errorf("benchmark resolved to %q", res.Benchmark)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run("sorcery", "fft"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Run("oracT", "doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run("custom", "fft"); err == nil {
		t.Error("custom policy via Run accepted")
	}
	if _, err := Run("oracT", "fft", WithDuration(0)); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run("oracT", "fft", WithHeatMap(0)); err == nil {
		t.Error("zero heat map resolution accepted")
	}
	if _, err := Run("oracT", "fft", WithTrackedRegulator(96)); err == nil {
		t.Error("out-of-range regulator accepted")
	}
	if _, err := Run("oracT", "fft", WithWarmup(-1)); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestPoliciesAndBenchmarksLists(t *testing.T) {
	if got := len(Policies()); got != 8 {
		t.Errorf("%d policies, want 8", got)
	}
	if got := len(Benchmarks()); got != 14 {
		t.Errorf("%d benchmarks, want 14", got)
	}
}

func TestRunCustomPolicy(t *testing.T) {
	// A trivial rotation policy: prefer regulators by (epoch + index).
	rank := func(domain int, in PolicyInputs, demandA float64, count int) []int {
		regs := DomainRegulators()[domain]
		out := make([]int, len(regs))
		for i := range out {
			out[i] = (i + in.Epoch) % len(regs)
		}
		return out
	}
	res, err := RunCustom(rank, "raytrace", WithDuration(100), WithWarmup(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "custom" {
		t.Errorf("policy labelled %q", res.Policy)
	}
	// Rotation spreads activity: every regulator sees some on-time.
	zero := 0
	for _, f := range res.VROnFrac {
		if f == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Errorf("%d regulators never activated under rotation", zero)
	}
	if _, err := RunCustom(nil, "fft"); err == nil {
		t.Error("nil rank accepted")
	}
}

func TestRunLDODesign(t *testing.T) {
	fivr, err := Run("all-on", "fft", WithDuration(100), WithWarmup(15), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ldo, err := Run("all-on", "fft", WithDuration(100), WithWarmup(15), WithSeed(3), WithLDODesign())
	if err != nil {
		t.Fatal(err)
	}
	if ldo.MaxNoisePct >= fivr.MaxNoisePct {
		t.Errorf("LDO noise %v not below FIVR %v", ldo.MaxNoisePct, fivr.MaxNoisePct)
	}
}

func TestRunTraces(t *testing.T) {
	res, err := Run("naive", "lu_ncb", WithDuration(100), WithWarmup(15),
		WithEpochTrace(), WithHeatMap(21), WithTrackedRegulator(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Error("no epoch trace")
	}
	if res.HeatMap == nil {
		t.Error("no heat map")
	}
	if len(res.VRTrace) == 0 {
		t.Error("no regulator trace")
	}
}

func TestRunMix(t *testing.T) {
	benchmarks := []string{"chol", "chol", "chol", "chol", "rayt", "rayt", "rayt", "rayt"}
	res, err := RunMix("oracT", benchmarks, WithDuration(100), WithWarmup(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "mix(chol,chol,chol,chol,rayt,rayt,rayt,rayt)" {
		t.Errorf("mix labelled %q", res.Benchmark)
	}
	if _, err := RunMix("oracT", []string{"fft"}); err == nil {
		t.Error("short mix accepted")
	}
	bad := append([]string(nil), benchmarks...)
	bad[7] = "doom"
	if _, err := RunMix("oracT", bad); err == nil {
		t.Error("unknown benchmark in mix accepted")
	}
	if _, err := RunMix("custom", benchmarks); err == nil {
		t.Error("custom policy via RunMix accepted")
	}
	if _, err := RunMix("wizardry", benchmarks); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunAgingTracking(t *testing.T) {
	res, err := Run("oracT", "lu_ncb", WithDuration(80), WithWarmup(10), WithAgingTracking())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MTTFYears) != NumRegulators {
		t.Errorf("MTTF for %d regulators", len(res.MTTFYears))
	}
	if res.MinMTTFYears <= 0 {
		t.Errorf("MinMTTF = %v", res.MinMTTFYears)
	}
}

func TestDomainRegulators(t *testing.T) {
	doms := DomainRegulators()
	if len(doms) != NumDomains {
		t.Fatalf("%d domains, want %d", len(doms), NumDomains)
	}
	total := 0
	seen := map[int]bool{}
	for i, regs := range doms {
		want := 9
		if i >= NumCores {
			want = 3
		}
		if len(regs) != want {
			t.Errorf("domain %d has %d regulators, want %d", i, len(regs), want)
		}
		for _, r := range regs {
			if seen[r] {
				t.Errorf("regulator %d in two domains", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != NumRegulators {
		t.Errorf("%d regulators total, want %d", total, NumRegulators)
	}
}

func TestRegulatorSides(t *testing.T) {
	logic, memory, err := RegulatorSides(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(logic) != 6 || len(memory) != 3 {
		t.Errorf("%d logic-side and %d memory-side, want 6 and 3", len(logic), len(memory))
	}
	if _, _, err := RegulatorSides(8); err == nil {
		t.Error("L3 domain accepted as core domain")
	}
	if _, _, err := RegulatorSides(-1); err == nil {
		t.Error("negative domain accepted")
	}
}

func TestRunSignatureDetector(t *testing.T) {
	res, err := Run("pracVT", "barnes", WithDuration(150), WithWarmup(20), WithSignatureDetector())
	if err != nil {
		t.Fatal(err)
	}
	st := res.DetectorStats
	if st.TruePositive+st.FalsePositive+st.TrueNegative+st.FalseNegative+st.Suppressed == 0 {
		t.Error("signature detector recorded nothing")
	}
}
