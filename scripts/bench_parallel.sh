#!/bin/sh
# Regenerates BENCH_parallel.json at the repo root: the worker-count
# matrix plus the paired cache-disabled control, then re-validates the
# freshly-written report with the same check CI runs on the committed
# one. Run from anywhere; writes relative to the repo root.
#
# The defaults favour stability over speed (see docs/PERFORMANCE.md for
# why repetitions are interleaved and how the noise floor is defined);
# pass tgbench flags to override, e.g. `scripts/bench_parallel.sh -reps 3`.
set -eu

cd "$(dirname "$0")/.."

echo "== recording worker matrix + cache control =="
go run ./cmd/tgbench -parallel -reps 7 -warmup 2 "$@"

echo "== validating the report =="
go run ./cmd/tgbench -check BENCH_parallel.json
