#!/usr/bin/env bash
# Chaos harness for the tgserve service (docs/SERVICE.md).
#
# Drives the failure modes the robustness layer claims to survive and
# asserts the service invariants held after each:
#
#   - worker kills mid-job (armed panics through the real recovery path)
#   - repeated and elastic preemption (checkpoint-park-resume)
#   - drain/spool/restart cycles, including a drain during retry backoff
#   - slow clients and mid-stream disconnects on the streaming path
#   - jobs carrying injected fault schedules
#   - a kill storm over a concurrent burst (no job lost or duplicated)
#   - a real process SIGTERMed mid-job and restarted over its spool
#
# "Survived" means: every job reached a terminal state, none vanished or
# ran twice into the same stream, and under the frozen clock every
# completed stream is byte-identical to an uninterrupted run's.
#
# Usage: scripts/chaos_serve.sh   (or: make chaos-serve)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "chaos-serve: in-process chaos suite (race detector on)"
go test -race -count=1 -timeout 300s -run 'TestChaos' ./internal/serve/

echo "chaos-serve: queue/supervisor robustness (shed, retry, cancel, drain)"
go test -race -count=1 -timeout 300s \
  -run 'TestQueue|TestRetryBackoffAndFailureRecord|TestCancelRunningJob|TestLoadShedding|TestDrainSpoolsAndRestartResumes' \
  ./internal/serve/

echo "chaos-serve: process-level SIGTERM drain + spool restart"
go test -count=1 -timeout 300s -run 'TestServeSIGTERM' ./cmd/tgserve/

echo "chaos-serve: committed benchmark baseline gate"
go run ./cmd/tgserve -check BENCH_serve.json

echo "chaos-serve: OK"
