#!/bin/sh
# Regenerates BENCH_baseline.json at the repo root from the telemetry
# layer's per-phase measurements, after a sanity pass of the Go benchmarks.
# Run from anywhere; writes relative to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== runner benchmarks (sanity, 3 iterations each) =="
go test -bench 'BenchmarkRunner' -benchtime 3x -run '^$' ./internal/sim/

echo "== recording telemetry baseline =="
go run ./cmd/tgbench -out BENCH_baseline.json "$@"
