GO ?= go

.PHONY: build test race vet fmt-check verify bench bench-baseline

build:
	$(GO) build ./...

# Tier-1 gate: everything must compile and every test must pass.
test:
	$(GO) build ./...
	$(GO) test ./...

# Race coverage on the concurrency-bearing packages (telemetry registry,
# parallel experiment sweep driving shared instrumentation).
race:
	$(GO) test -race ./internal/telemetry/... ./internal/sim/...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# The full pre-merge check.
verify: vet fmt-check test race

# Quick runner benchmark (3 iterations, telemetry off vs. on).
bench:
	$(GO) test -bench 'BenchmarkRunner' -benchtime 3x -run '^$$' ./internal/sim/

# Regenerate the committed performance baseline from telemetry snapshots.
bench-baseline:
	./scripts/bench_baseline.sh
