GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet fmt-check lint lint-json lint-incremental alloc-gate sanitize fuzz chaos chaos-serve verify bench bench-baseline bench-parallel bench-serve

build:
	$(GO) build ./...

# Tier-1 gate: everything must compile and every test must pass.
test:
	$(GO) build ./...
	$(GO) test ./...

# Race coverage everywhere: the experiments sweep workers and the
# telemetry registry share state, and new concurrency should be caught
# without having to remember to list its package here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis: the seven syntactic passes, the three
# interprocedural tgflow passes (cross-call unit propagation, NaN-taint
# tracking, checkpoint field coverage), the four tgpar
# concurrency/cache-contract passes (parwrite, redorder, cacheflush,
# workerpure), the three tgperf hot-path passes (allocfree, boxcheck,
# capgrow), and the four tgsync synchronization-lifecycle passes
# (lockorder, unlockpath, blockheld, golife) — see
# docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/tglint ./...

# Same findings as a JSON artifact; CI diffs this against the committed
# zero-findings baseline in .github/tglint-baseline.json.
lint-json:
	$(GO) run ./cmd/tglint -json ./...

# Incremental lint: per-package fingerprint cache under .tglint-cache/.
# A no-change rerun skips loading entirely and replays cached findings;
# output is byte-identical to the full run (see docs/STATIC_ANALYSIS.md,
# "Incremental analysis"). Cache-hit stats go to stderr.
lint-incremental:
	$(GO) run ./cmd/tglint -cache .tglint-cache ./...

# Hard zero-allocation gate on the steady-state epoch loop (the dynamic
# counterpart of the tgperf lint passes — see docs/PERFORMANCE.md, "The
# zero-allocation contract"). -count=1 defeats cached test verdicts;
# never add -race here: its instrumentation allocates and the gate
# requires exactly zero.
alloc-gate:
	$(GO) test -run TestStepEpochZeroAllocs -count=1 ./internal/sim/

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Run the whole suite with the tgsan physics sanitizer compiled in: every
# epoch is checked for energy conservation, temperature and droop bounds,
# gating legality and NaN/Inf (see docs/INVARIANTS.md).
sanitize:
	$(GO) test -tags tgsan ./...

# Coverage-guided fuzzing with the sanitizer as the oracle. FUZZTIME is per
# target (default 30s); verify uses a quick 3s pass.
fuzz:
	$(GO) test -tags tgsan -run '^$$' -fuzz FuzzThermalStep -fuzztime $(FUZZTIME) ./internal/thermal/
	$(GO) test -tags tgsan -run '^$$' -fuzz FuzzPDNTransient -fuzztime $(FUZZTIME) ./internal/pdn/
	$(GO) test -tags tgsan -run '^$$' -fuzz FuzzSimConfig -fuzztime $(FUZZTIME) ./internal/sim/

# Chaos gate: every fault model under the sanitizer, kill-and-resume
# byte-identity, degraded policy ladders, and the tolerant sweep paths
# (see docs/ROBUSTNESS.md).
chaos:
	$(GO) test -tags tgsan -run 'TestFaultMatrix|TestCheckpoint|TestDegraded|TestSweepKeepGoing|TestSweepRecoversPanic|TestSweepAllCellsFailed|TestWatchdog' ./internal/sim/ ./internal/experiments/ ./internal/thermal/

# Service chaos gate: kill workers mid-job, preempt, drain/restart, abuse
# the streaming path, then verify no job was lost, duplicated, or made
# non-deterministic (see docs/SERVICE.md).
chaos-serve:
	./scripts/chaos_serve.sh

# The full pre-merge check.
verify: vet fmt-check lint test race sanitize chaos chaos-serve
	$(MAKE) fuzz FUZZTIME=3s

# Quick runner benchmark (3 iterations, telemetry off vs. on).
bench:
	$(GO) test -bench 'BenchmarkRunner' -benchtime 3x -run '^$$' ./internal/sim/

# Regenerate the committed performance baseline from telemetry snapshots.
bench-baseline:
	./scripts/bench_baseline.sh

# Regenerate the committed worker-matrix report (with the paired
# cache-disabled control) and validate it.
bench-parallel:
	./scripts/bench_parallel.sh

# Regenerate the committed service baseline (BENCH_serve.json): latency
# percentiles + throughput for 1000 concurrent small jobs, and the
# preemption byte-identity oracle. Validated by `tgserve -check`.
bench-serve:
	$(GO) run ./cmd/tgserve -bench -out BENCH_serve.json
