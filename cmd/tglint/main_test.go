package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/testdata/src"

// TestDriverFlagsSeededViolations runs the real driver over the fixture
// packages and proves every pass fires through the full pipeline (go
// list loading, config discovery, suppression, exit code).
func TestDriverFlagsSeededViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		fixtures + "/unitcheck",
		fixtures + "/detcheck/sim",
		fixtures + "/floatcheck",
		fixtures + "/errsink",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"[unitcheck] scale mismatch",
		"[unitcheck] dimension mismatch",
		"[detcheck] time.Now",
		"[detcheck] global math/rand",
		"[detcheck] os.Getenv",
		"[detcheck] floating-point accumulation",
		"[floatcheck] floating-point == comparison",
		"[errsink] error result of Step is silently discarded",
		"[errsink] deferred error result of Step",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output missing %q\noutput:\n%s", want, out)
		}
	}
	// Suppressed seeds must not leak through.
	for _, banned := range []string{"annotated", "demonstrates"} {
		if strings.Contains(out, banned) {
			t.Errorf("a suppressed fixture diagnostic leaked: %q appears in\n%s", banned, out)
		}
	}
}

// TestDriverFlowPasses drives the three interprocedural passes through
// the full pipeline: the shared Program is built once over all three
// fixture packages.
func TestDriverFlowPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-passes", "unitflow,nanflow,statecover",
		fixtures + "/unitflow",
		fixtures + "/nanflow/sim",
		fixtures + "/statecover/ckpt",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"[unitflow] scale mismatch",
		"[unitflow] dimension mismatch",
		"[nanflow] possible NaN",
		"unchecked division",
		"never sets field Skew",
		"never reads field Sum",
		"no producer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output missing %q\noutput:\n%s", want, out)
		}
	}
	for _, banned := range []string{"annotated", "sentinel"} {
		if strings.Contains(out, banned) {
			t.Errorf("a suppressed fixture diagnostic leaked: %q appears in\n%s", banned, out)
		}
	}
}

// TestDriverJSON checks the -json schema the CI problem matcher and
// artifact baseline depend on.
func TestDriverJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-passes", "nanflow", fixtures + "/nanflow/sim"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array over the seeded nanflow fixture")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Pass != "nanflow" || d.Message == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}

	// A clean tree must still emit valid JSON: an empty array, not "".
	stdout.Reset()
	if code := run([]string{"-json", fixtures + "/clean"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -json run: exit %d, want 0\n%s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestDriverCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixtures + "/clean"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", stdout.String())
	}
}

func TestDriverPassSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "floatcheck", fixtures + "/errsink"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("floatcheck-only run over the errsink fixture: exit %d, want 0\n%s", code, stdout.String())
	}
	var out2 bytes.Buffer
	if code := run([]string{"-passes", "nosuchpass", "./..."}, &out2, &stderr); code != 2 {
		t.Errorf("unknown pass: exit %d, want 2", code)
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"unitcheck", "detcheck", "floatcheck", "errsink"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
