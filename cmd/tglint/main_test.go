package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/testdata/src"

// TestDriverFlagsSeededViolations runs the real driver over the fixture
// packages and proves every pass fires through the full pipeline (go
// list loading, config discovery, suppression, exit code).
func TestDriverFlagsSeededViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		fixtures + "/unitcheck",
		fixtures + "/detcheck/sim",
		fixtures + "/floatcheck",
		fixtures + "/errsink",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"[unitcheck] scale mismatch",
		"[unitcheck] dimension mismatch",
		"[detcheck] time.Now",
		"[detcheck] global math/rand",
		"[detcheck] os.Getenv",
		"[detcheck] floating-point accumulation",
		"[floatcheck] floating-point == comparison",
		"[errsink] error result of Step is silently discarded",
		"[errsink] deferred error result of Step",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output missing %q\noutput:\n%s", want, out)
		}
	}
	// Suppressed seeds must not leak through.
	for _, banned := range []string{"annotated", "demonstrates"} {
		if strings.Contains(out, banned) {
			t.Errorf("a suppressed fixture diagnostic leaked: %q appears in\n%s", banned, out)
		}
	}
}

func TestDriverCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixtures + "/clean"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", stdout.String())
	}
}

func TestDriverPassSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-passes", "floatcheck", fixtures + "/errsink"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("floatcheck-only run over the errsink fixture: exit %d, want 0\n%s", code, stdout.String())
	}
	var out2 bytes.Buffer
	if code := run([]string{"-passes", "nosuchpass", "./..."}, &out2, &stderr); code != 2 {
		t.Errorf("unknown pass: exit %d, want 2", code)
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"unitcheck", "detcheck", "floatcheck", "errsink"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
