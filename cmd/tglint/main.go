// Command tglint runs the repository's domain-aware static-analysis
// passes — seven syntactic ones (unitcheck, detcheck, floatcheck,
// errsink, aliascheck, goroutinecheck, invcheck), three
// interprocedural tgflow passes (unitflow, nanflow, statecover), the
// tgpar concurrency/cache-contract family (parwrite, redorder,
// cacheflush, workerpure), the tgperf hot-path family (allocfree,
// boxcheck, capgrow), and the tgsync synchronization-lifecycle family
// (lockorder, unlockpath, blockheld, golife); see
// docs/STATIC_ANALYSIS.md — over go list package patterns:
//
//	tglint ./...
//	tglint -passes floatcheck,errsink ./internal/thermal
//	tglint -json ./... > findings.json
//
// Diagnostics print as "file:line:col: [pass] message", or with -json
// as a JSON array of {file,line,col,pass,message} objects (an empty
// array on a clean tree) for CI artifact collection and the GitHub
// problem matcher. The process exits 1 when any unsuppressed
// diagnostic is found, 2 on usage or load failure, and 0 on a clean
// tree, so `make verify` and CI can gate on it. Configuration is read
// from the nearest .tglint.json (walking up from the working
// directory) unless -config overrides it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"thermogater/internal/analysis"
)

// jsonDiagnostic is the -json output schema, kept in lockstep with
// .github/tglint-problem-matcher.json.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configPath = fs.String("config", "", "path to .tglint.json (default: nearest ancestor of the working directory)")
		passList   = fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
		list       = fs.Bool("list", false, "list available passes and exit")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as a JSON array instead of plain text")
		verbose    = fs.Bool("v", false, "also print soft type-check errors")
		cacheDir   = fs.String("cache", "", "enable incremental analysis with this cache directory (e.g. .tglint-cache)")
		statsPath  = fs.String("cache-stats", "", "with -cache, also write hit/miss statistics as JSON to this file")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tglint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *passList != "" {
		analyzers = nil
		for _, name := range strings.Split(*passList, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "tglint: unknown pass %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "tglint: %v\n", err)
		return 2
	}
	cfg := analysis.DefaultConfig()
	path := *configPath
	if path == "" {
		path = analysis.FindConfig(cwd)
	}
	if path != "" {
		cfg, err = analysis.LoadConfig(path)
		if err != nil {
			fmt.Fprintf(stderr, "tglint: %v\n", err)
			return 2
		}
	}

	var diags []analysis.Diagnostic
	if *cacheDir != "" {
		// Incremental mode: diagnostics on stdout stay byte-identical to a
		// full run (the CI drift gate depends on that), so cache statistics
		// go to stderr and, optionally, a -cache-stats JSON file.
		var stats *analysis.CacheStats
		diags, stats, err = analysis.RunIncremental(cwd, patterns, analyzers, cfg, *cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "tglint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "tglint: cache: %s\n", stats.Summary())
		if *statsPath != "" {
			b, err := json.MarshalIndent(stats, "", "  ")
			if err == nil {
				err = os.WriteFile(*statsPath, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(stderr, "tglint: cache stats: %v\n", err)
				return 2
			}
		}
	} else {
		pkgs, err := analysis.Load(cwd, patterns)
		if err != nil {
			fmt.Fprintf(stderr, "tglint: %v\n", err)
			return 2
		}
		if *verbose {
			for _, pkg := range pkgs {
				for _, terr := range pkg.TypeErrors {
					fmt.Fprintf(stderr, "tglint: %s: type-check: %v\n", pkg.ImportPath, terr)
				}
			}
		}
		diags = analysis.Run(pkgs, analyzers, cfg)
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:    relName(cwd, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Pass:    d.Pass,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "tglint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relName(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tglint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// relName shortens a diagnostic path to be cwd-relative when possible.
func relName(cwd, name string) string {
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
