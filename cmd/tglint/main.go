// Command tglint runs the repository's domain-aware static-analysis
// passes (unitcheck, detcheck, floatcheck, errsink — see
// docs/STATIC_ANALYSIS.md) over go list package patterns:
//
//	tglint ./...
//	tglint -passes floatcheck,errsink ./internal/thermal
//
// Diagnostics print as "file:line:col: [pass] message". The process
// exits 1 when any unsuppressed diagnostic is found, 2 on usage or load
// failure, and 0 on a clean tree, so `make verify` and CI can gate on
// it. Configuration is read from the nearest .tglint.json (walking up
// from the working directory) unless -config overrides it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"thermogater/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configPath = fs.String("config", "", "path to .tglint.json (default: nearest ancestor of the working directory)")
		passList   = fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
		list       = fs.Bool("list", false, "list available passes and exit")
		verbose    = fs.Bool("v", false, "also print soft type-check errors")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tglint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *passList != "" {
		analyzers = nil
		for _, name := range strings.Split(*passList, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "tglint: unknown pass %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "tglint: %v\n", err)
		return 2
	}
	cfg := analysis.DefaultConfig()
	path := *configPath
	if path == "" {
		path = analysis.FindConfig(cwd)
	}
	if path != "" {
		cfg, err = analysis.LoadConfig(path)
		if err != nil {
			fmt.Fprintf(stderr, "tglint: %v\n", err)
			return 2
		}
	}

	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "tglint: %v\n", err)
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "tglint: %s: type-check: %v\n", pkg.ImportPath, terr)
			}
		}
	}

	diags := analysis.Run(pkgs, analyzers, cfg)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tglint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
