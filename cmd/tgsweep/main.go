// Command tgsweep runs the complete evaluation — every policy over every
// benchmark — and prints all sweep-derived artefacts (Figs. 7, 9, 10, 11,
// Table 2 and the Section 6.3 headline) in one pass. With -markdown the
// tables are emitted as GitHub-flavoured markdown, ready to paste into
// EXPERIMENTS.md.
//
// The sweep is fault-tolerant: a cell that fails (after one retry) is
// reported on stderr and the remaining cells still complete and print.
// With -faults every cell runs under the given fault schedule (see
// docs/ROBUSTNESS.md for the grammar).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/experiments"
	"thermogater/internal/fault"
	"thermogater/internal/report"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

func main() {
	var (
		duration = flag.Int("duration", 0, "run length in ms (0 = full 3000ms ROI)")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		faults   = flag.String("faults", "", "fault schedule armed in every run, e.g. 'vr-stuck-off@30:unit=12;sensor-noise@0:value=0.1'")
		retries  = flag.Int("retries", 2, "attempts per (policy, benchmark) cell before recording it as failed")
	)
	flag.Parse()

	sched, err := fault.ParseSchedule(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsweep:", err)
		os.Exit(2)
	}

	opts := experiments.Options{
		DurationMS:   *duration,
		Seed:         *seed,
		Parallel:     *parallel,
		KeepGoing:    true,
		MaxAttempts:  *retries,
		RetryBackoff: 100 * time.Millisecond,
	}
	if sched != nil {
		opts.Mutate = func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config) {
			cfg.Faults = sched
		}
	}
	fmt.Fprintf(os.Stderr, "tgsweep: running 14 benchmarks × %d policies (duration %dms, seed %d)\n",
		len(experiments.SweepPolicies()), *duration, *seed)
	sweep, err := experiments.RunSweep(experiments.SweepPolicies(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsweep:", err)
		os.Exit(1)
	}
	for _, f := range sweep.Failures {
		fmt.Fprintln(os.Stderr, "tgsweep: failed run:", f)
	}

	tables := []struct {
		name string
		get  func() (*report.Table, error)
	}{
		{"fig7", sweep.Fig7PlossSaving},
		{"fig9", sweep.Fig9Tmax},
		{"fig10", sweep.Fig10Gradient},
		{"fig11", sweep.Fig11VoltageNoise},
		{"table2", sweep.Table2Emergencies},
		{"headline", func() (*report.Table, error) {
			h, err := sweep.Headline(0.90)
			if err != nil {
				return nil, err
			}
			return h.Table(), nil
		}},
	}
	for _, t := range tables {
		tab, err := t.get()
		if err != nil {
			// With failed cells a derived table can be incomplete; report
			// and keep printing whatever else survives.
			fmt.Fprintf(os.Stderr, "tgsweep: %s: %v\n", t.name, err)
			if len(sweep.Failures) == 0 {
				os.Exit(1)
			}
			continue
		}
		render := tab.Render
		if *markdown {
			render = tab.RenderMarkdown
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tgsweep:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if len(sweep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "tgsweep: finished with %d failed run(s)\n", len(sweep.Failures))
		os.Exit(1)
	}
}
