// Command tgsweep runs the complete evaluation — every policy over every
// benchmark — and prints all sweep-derived artefacts (Figs. 7, 9, 10, 11,
// Table 2 and the Section 6.3 headline) in one pass. With -markdown the
// tables are emitted as GitHub-flavoured markdown, ready to paste into
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"thermogater/internal/experiments"
	"thermogater/internal/report"
)

func main() {
	var (
		duration = flag.Int("duration", 0, "run length in ms (0 = full 3000ms ROI)")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
	)
	flag.Parse()

	opts := experiments.Options{DurationMS: *duration, Seed: *seed, Parallel: *parallel}
	fmt.Fprintf(os.Stderr, "tgsweep: running 14 benchmarks × %d policies (duration %dms, seed %d)\n",
		len(experiments.SweepPolicies()), *duration, *seed)
	sweep, err := experiments.RunSweep(experiments.SweepPolicies(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsweep:", err)
		os.Exit(1)
	}

	tables := []struct {
		name string
		get  func() (*report.Table, error)
	}{
		{"fig7", sweep.Fig7PlossSaving},
		{"fig9", sweep.Fig9Tmax},
		{"fig10", sweep.Fig10Gradient},
		{"fig11", sweep.Fig11VoltageNoise},
		{"table2", sweep.Table2Emergencies},
		{"headline", func() (*report.Table, error) {
			h, err := sweep.Headline(0.90)
			if err != nil {
				return nil, err
			}
			return h.Table(), nil
		}},
	}
	for _, t := range tables {
		tab, err := t.get()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgsweep: %s: %v\n", t.name, err)
			os.Exit(1)
		}
		render := tab.Render
		if *markdown {
			render = tab.RenderMarkdown
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tgsweep:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
