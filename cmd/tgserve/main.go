// Command tgserve runs the simulation service: a long-running HTTP/JSON
// server where clients submit sim/sweep jobs, stream telemetry and fetch
// results, supervised by the robustness layer documented in
// docs/SERVICE.md (bounded prioritized queue with load shedding, panic
// recovery, capped retries, checkpoint-backed preemption, graceful drain
// on SIGTERM).
//
// Serve:
//
//	tgserve -addr localhost:8080 -workers 4 -spool /var/tmp/tgserve
//
// Record the service baseline (writes BENCH_serve.json):
//
//	tgserve -bench -out BENCH_serve.json
//
// CI gate over the committed baseline:
//
//	tgserve -check BENCH_serve.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermogater/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		workers      = flag.Int("workers", 2, "worker goroutines")
		simWorkers   = flag.Int("sim-workers", 0, "per-run pipeline workers (0 = inline)")
		queueLimit   = flag.Int("queue", 256, "queue capacity before load shedding")
		maxAttempts  = flag.Int("max-attempts", 3, "attempts per job before it fails")
		backoff      = flag.Duration("backoff", 100*time.Millisecond, "first retry backoff (doubles per attempt)")
		preemptAfter = flag.Duration("preempt-after", 0, "park running jobs after this long when work is queued (0 = off)")
		ckptEvery    = flag.Int("checkpoint-every", 200, "crash-snapshot period in epochs")
		spool        = flag.String("spool", "", "directory for drain/restart job spooling (empty = off)")
		resultTTL    = flag.Duration("result-ttl", 15*time.Minute, "evict finished jobs (results + streams) this long after they settle (negative = keep forever)")
		frozenClock  = flag.Bool("frozen-clock", false, "pin telemetry clocks to the Unix epoch (byte-deterministic streams; chaos-suite mode)")
		bench        = flag.Bool("bench", false, "run the service benchmark instead of serving")
		benchJobs    = flag.Int("bench-jobs", 1000, "small-job burst size for -bench")
		benchMS      = flag.Int("bench-duration", 10, "small-job simulated length in ms for -bench")
		out          = flag.String("out", "BENCH_serve.json", "output file for -bench")
		check        = flag.String("check", "", "validate a committed BENCH_serve.json and exit")
	)
	flag.Parse()

	switch {
	case *check != "":
		if err := runCheck(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK\n", *check)
	case *bench:
		if err := runBench(*benchJobs, *benchMS, *out); err != nil {
			fatal(err)
		}
	default:
		if err := runServe(serveOptions{
			addr: *addr,
			cfg: serve.Config{
				Workers:         *workers,
				SimWorkers:      *simWorkers,
				QueueLimit:      *queueLimit,
				MaxAttempts:     *maxAttempts,
				RetryBackoff:    *backoff,
				PreemptAfter:    *preemptAfter,
				CheckpointEvery: *ckptEvery,
				SpoolDir:        *spool,
				ResultTTL:       *resultTTL,
				FrozenClock:     *frozenClock,
			},
		}); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgserve:", err)
	os.Exit(1)
}

type serveOptions struct {
	addr string
	cfg  serve.Config
}

// runServe blocks until SIGINT/SIGTERM, then drains gracefully: intake
// stops, in-flight jobs checkpoint and spool, telemetry flushes, and the
// process exits 0.
func runServe(o serveOptions) error {
	sup, err := serve.NewSupervisor(o.cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           serve.NewServer(sup),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
		// No WriteTimeout: the stream path manages its own per-chunk
		// write deadlines; a global one would cut long streams dead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "tgserve: serving on http://%s\n", o.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "tgserve: draining...")

	// Stop accepting connections first, then drain the supervisor so
	// in-flight jobs park with checkpoints and spool.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "tgserve: http shutdown:", err)
	}
	if err := sup.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "tgserve: drained cleanly")
	return nil
}

func runBench(jobs, durationMS int, out string) error {
	rep, err := serve.RunBench(serve.BenchOptions{Jobs: jobs, DurationMS: durationMS}, os.Stderr)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := serve.WriteReport(f, rep); err != nil {
		//lint:ignore errsink the write error is the one worth reporting
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tgserve: wrote %s\n", out)
	return serve.Check(rep)
}

func runCheck(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//lint:ignore errsink read-only file: Close cannot lose data and its error carries no signal
	defer f.Close()
	rep, err := serve.ReadReport(f)
	if err != nil {
		return err
	}
	return serve.Check(rep)
}
