package main

// Process-level robustness tests: a real tgserve process is started,
// loaded over HTTP, killed with SIGTERM mid-job, and restarted over the
// same spool directory. The stitched post-restart telemetry stream must
// be byte-identical to an uninterrupted server's — the end-to-end form
// of the guarantee the in-process chaos suite checks per layer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildServe compiles the tgserve binary once per test binary.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tgserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building tgserve: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type serveProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

func startServe(t *testing.T, bin, addr, spool string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "1",
		"-spool", spool,
		"-frozen-clock",
		"-checkpoint-every", "10",
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, addr: addr, stderr: &stderr}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// Wait for the server to come up.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server on %s never became healthy; stderr:\n%s", addr, stderr.String())
	return nil
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

func (p *serveProc) submit(t *testing.T, spec map[string]any) string {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(p.url("/jobs"), "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

func (p *serveProc) status(t *testing.T, id string) (state string, streamLen int) {
	t.Helper()
	resp, err := http.Get(p.url("/jobs/" + id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		State     string `json:"state"`
		StreamLen int    `json:"stream_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.State, st.StreamLen
}

func (p *serveProc) waitDone(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		state, _ := p.status(t, id)
		switch state {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s ended %s", id, state)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

func (p *serveProc) stream(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(p.url("/jobs/" + id + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeSIGTERMDrainRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildServe(t)
	longSpec := map[string]any{
		"policy": "all-on", "benchmark": "fft", "seed": 900,
		"duration_ms": 2000, "warmup_epochs": 2,
	}
	shortSpec := map[string]any{
		"policy": "all-on", "benchmark": "fft", "seed": 901,
		"duration_ms": 5, "warmup_epochs": 2,
	}

	// Reference: an uninterrupted server over its own spool.
	ref := startServe(t, bin, freeAddr(t), t.TempDir())
	refID := ref.submit(t, longSpec)
	ref.waitDone(t, refID)
	want := ref.stream(t, refID)
	if len(want) == 0 {
		t.Fatal("reference stream is empty")
	}
	if err := ref.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ref.cmd.Wait(); err != nil {
		t.Fatalf("reference server exited uncleanly: %v\n%s", err, ref.stderr.String())
	}

	// Victim: same long job plus a queued short one, SIGTERMed mid-run.
	spool := t.TempDir()
	p1 := startServe(t, bin, freeAddr(t), spool)
	longID := p1.submit(t, longSpec)
	shortID := p1.submit(t, shortSpec)
	if longID != refID {
		t.Fatalf("content-hash IDs diverged across processes: %s vs %s", longID, refID)
	}
	// Let the long job make real progress first.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		state, n := p1.status(t, longID)
		if state == "done" {
			t.Skip("long job finished before the SIGTERM landed")
		}
		if state == "running" && n > 4096 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERMed server exited uncleanly: %v\n%s", err, p1.stderr.String())
	}
	if !strings.Contains(p1.stderr.String(), "drained cleanly") {
		t.Fatalf("no clean-drain marker in stderr:\n%s", p1.stderr.String())
	}
	for _, id := range []string{longID} {
		if _, err := os.Stat(filepath.Join(spool, id+".job")); err != nil {
			t.Fatalf("job %s not spooled: %v", id, err)
		}
	}

	// Restart over the same spool: both jobs must finish, and the
	// stitched long-job stream must match the uninterrupted reference
	// byte for byte.
	p2 := startServe(t, bin, freeAddr(t), spool)
	p2.waitDone(t, longID)
	p2.waitDone(t, shortID)
	got := p2.stream(t, longID)
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched stream (%d bytes) differs from the uninterrupted reference (%d bytes)", len(got), len(want))
	}
	// Every record exactly once: JSONL line count must match too.
	if gl, wl := bytes.Count(got, []byte("\n")), bytes.Count(want, []byte("\n")); gl != wl {
		t.Fatalf("record counts differ: %d vs %d", gl, wl)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("restarted server exited uncleanly: %v\n%s", err, p2.stderr.String())
	}
}

func TestServeCheckGateRejectsTamperedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildServe(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	report := map[string]any{
		"schema":     "thermogater/bench-serve/v1",
		"go_version": "go0.0", "gomaxprocs": 1, "workers": 4, "queue_limit": 1016,
		"small_jobs": map[string]any{
			"jobs": 1000, "duration_ms": 10, "completed": 1000, "shed": 0,
			"p50_ms": 5.0, "p99_ms": 20.0, "throughput_jobs_per_sec": 100.0, "wall_s": 10.0,
		},
		"preempt": map[string]any{
			"duration_ms": 200, "preempts": 2, "byte_identical": true, "stream_bytes": 10000,
		},
	}
	writeJSONFile(t, good, report)
	report["preempt"].(map[string]any)["byte_identical"] = false
	writeJSONFile(t, bad, report)

	if out, err := exec.Command(bin, "-check", good).CombinedOutput(); err != nil {
		t.Fatalf("valid report rejected: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, "-check", bad).CombinedOutput(); err == nil {
		t.Fatalf("tampered report passed the gate:\n%s", out)
	} else if !strings.Contains(string(out), "byte-identical") {
		t.Fatalf("gate failed for the wrong reason:\n%s", out)
	}
}

func writeJSONFile(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMain keeps subprocess builds honest about the working directory.
func TestMain(m *testing.M) {
	if _, err := os.Stat("main.go"); err != nil {
		fmt.Fprintln(os.Stderr, "tgserve tests must run from cmd/tgserve:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}
