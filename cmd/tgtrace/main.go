// Command tgtrace runs one simulation and exports its traces for external
// analysis or plotting:
//
//	tgtrace -policy oracT -bench lu_ncb -kind epochs  > epochs.csv
//	tgtrace -policy naive -bench lu_ncb -kind vr -vr 4 > vr4.csv
//	tgtrace -policy all-on -bench cholesky -kind heatmap -res 84 > map.csv
//	tgtrace -policy pracVT -bench fft -kind result > result.json
//
// Epoch and regulator traces are the data behind the paper's Figs. 6 and
// 8; heat maps behind Fig. 12; the JSON result carries every aggregate
// metric.
package main

import (
	"flag"
	"fmt"
	"os"

	"thermogater/internal/core"
	"thermogater/internal/sim"
	"thermogater/internal/traceio"
	"thermogater/internal/workload"
)

func main() {
	var (
		policy   = flag.String("policy", "oracT", "gating policy")
		bench    = flag.String("bench", "lu_ncb", "benchmark name")
		kind     = flag.String("kind", "epochs", "what to export: epochs, vr, heatmap, result")
		vrID     = flag.Int("vr", 0, "regulator to track for -kind vr")
		res      = flag.Int("res", 84, "heat map resolution for -kind heatmap")
		duration = flag.Int("duration", 0, "run length in ms (0 = full ROI)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	p, err := core.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig(p, prof)
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.DurationMS = *duration
	}
	switch *kind {
	case "epochs":
		cfg.TraceEpochs = true
	case "vr":
		cfg.TrackVR = *vrID
	case "heatmap":
		cfg.HeatMapRes = *res
	case "result":
		cfg.TrackAging = true
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	runner, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	result, err := runner.Run()
	if err != nil {
		fatal(err)
	}

	switch *kind {
	case "epochs":
		err = traceio.WriteEpochCSV(os.Stdout, result.Trace)
	case "vr":
		err = traceio.WriteVRTraceCSV(os.Stdout, result.VRTrace)
	case "heatmap":
		err = traceio.WriteHeatMapCSV(os.Stdout, result.HeatMap)
	case "result":
		err = traceio.WriteResultJSON(os.Stdout, result)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgtrace:", err)
	os.Exit(1)
}
