package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

func TestMeasureProducesCompleteBaseline(t *testing.T) {
	cases := []benchCase{{"all-on", "fft"}}
	b, err := measure(cases, 30, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Schema != "thermogater/bench/v1" {
		t.Errorf("schema = %q", back.Schema)
	}
	if len(back.Cases) != 1 {
		t.Fatalf("cases = %d, want 1", len(back.Cases))
	}
	c := back.Cases[0]
	if c.Name != "runner/all-on/fft" || c.Policy != "all-on" || c.Benchmark != "fft" {
		t.Errorf("case identity wrong: %+v", c)
	}
	if c.Epochs != 30 {
		t.Errorf("epochs = %d, want 30", c.Epochs)
	}
	if c.WallNSPerEpoch <= 0 {
		t.Errorf("wall_ns_per_epoch = %v", c.WallNSPerEpoch)
	}
	for _, ph := range []string{"uarch", "power", "governor", "vr", "thermal", "pdn"} {
		if _, ok := c.PhaseNSPerEpoch[ph]; !ok {
			t.Errorf("phase %q missing from baseline", ph)
		}
	}
	if c.ThermalSubsteps <= 0 {
		t.Errorf("thermal substeps per epoch = %v", c.ThermalSubsteps)
	}
	if c.PDNSteadySolves <= 0 {
		t.Errorf("pdn steady solves per epoch = %v", c.PDNSteadySolves)
	}
}

func TestMeasureRejectsUnknownCase(t *testing.T) {
	if _, err := measure([]benchCase{{"nope", "fft"}}, 30, 1, 0, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := measure([]benchCase{{"all-on", "nope"}}, 30, 1, 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestParseWorkers(t *testing.T) {
	got, err := parseWorkers("0, 2,8")
	if err != nil || len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseWorkers = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "-1", "1,,2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v, want 0", m)
	}
}

func TestPairedEstimators(t *testing.T) {
	wall := func(ns float64) *CaseResult {
		return &CaseResult{WallNSPerEpoch: ns, PhaseNSPerEpoch: map[string]int64{"pdn": int64(ns / 10)}}
	}
	// Three rounds with a 2x drift between rounds: per-round pairing must
	// still resolve cell 1 running 10% slower than cell 0.
	rounds := [][]*CaseResult{
		{wall(100), wall(110), wall(102)},
		{wall(200), wall(220), wall(198)},
		{wall(150), wall(165), wall(151)},
	}
	if r := medianRatio(rounds, 1, 0, wallOf); r < 1.099 || r > 1.101 {
		t.Errorf("medianRatio = %v, want 1.10 despite 2x drift", r)
	}
	// The null pair (cells 0 and 2, same configuration) bounds the floor:
	// deviations are 2%, 1%, ~0.67% -> median 1%.
	if nf := nullFloorPct(rounds, 2, 0); nf < 0.9 || nf > 1.1 {
		t.Errorf("nullFloorPct = %v, want ~1", nf)
	}
	if r := medianRatio(rounds, 0, 0, wallOf); r != 1 {
		t.Errorf("self ratio = %v, want exactly 1", r)
	}
}

// TestMeasureParallelMatrix: a tiny matrix sweep must produce a
// self-consistent report — the exact property -check later enforces on
// the committed file.
func TestMeasureParallelMatrix(t *testing.T) {
	rep, err := measureParallel([]benchCase{{"oracT", "fft"}}, 30, 1, 0, 1, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ParallelSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Cases) != 1 || len(rep.Cases[0].Rows) != 2 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	c := rep.Cases[0]
	if c.Rows[0].Workers != 0 || c.Rows[0].SpeedupVsBaseline != 1 {
		t.Errorf("workers=0 row: %+v", c.Rows[0])
	}
	if c.Rows[1].Workers != 2 || c.Rows[1].SpeedupVsBaseline <= 0 {
		t.Errorf("workers=2 row: %+v", c.Rows[1])
	}
	if c.Rows[0].CacheHitRate <= 0.5 {
		t.Errorf("cache hit rate = %v, want the per-mask cache mostly hitting", c.Rows[0].CacheHitRate)
	}
	if c.NoCacheWallNSPerEpoch <= 0 {
		t.Errorf("nocache control wall = %v, want positive", c.NoCacheWallNSPerEpoch)
	}
	if c.CacheSpeedup <= 0 {
		t.Errorf("cache_speedup = %v, want positive", c.CacheSpeedup)
	}
	// The interleaved control and the cached run are seconds apart, and
	// the pdn-phase ratio is a work ratio (a full effective-resistance
	// recompute per substep per domain vs a lookup), so even a single
	// repetition on a noisy box keeps it above 1.
	if c.CacheSpeedupPDNPhase <= 1 {
		t.Errorf("cache_speedup_pdn_phase = %v, want > 1", c.CacheSpeedupPDNPhase)
	}
	// The paired-differencing allocation figures must witness the epoch
	// loop's zero-allocation contract at every worker count. This test's
	// 30 ms window over-weights the annotated rare paths whose rate
	// decays over a run (worst-noise snapshots, burst-buffer regrowth),
	// so the bound here is looser than -check's 0.5: at the committed
	// report's 150 ms duration the same figures land below 0.2 (see
	// docs/PERFORMANCE.md).
	for _, r := range c.Rows {
		if r.AllocsPerEpoch >= 2 || r.AllocsPerEpoch <= -2 {
			t.Errorf("workers=%d: allocs_per_epoch = %v, want ~0", r.Workers, r.AllocsPerEpoch)
		}
		if r.BytesPerEpoch >= 4096 || r.BytesPerEpoch <= -4096 {
			t.Errorf("workers=%d: bytes_per_epoch = %v, want ~0", r.Workers, r.BytesPerEpoch)
		}
	}
}

func TestCheckParallelFile(t *testing.T) {
	write := func(t *testing.T, rep *ParallelReport) string {
		t.Helper()
		path := t.TempDir() + "/p.json"
		var buf bytes.Buffer
		if err := writeJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := &ParallelReport{
		Schema: ParallelSchema,
		Cases: []ParallelCase{{
			Name: "pipeline/oracT/fft", Epochs: 30,
			NoCacheWallNSPerEpoch: 120,
			CacheSpeedup:          1.2,
			CacheSpeedupPDNPhase:  1.8,
			Rows: []ParallelRow{
				{Workers: 0, WallNSPerEpoch: 100, SpeedupVsBaseline: 1, CacheHitRate: 0.9},
				{Workers: 4, WallNSPerEpoch: 40, SpeedupVsBaseline: 2.5, CacheHitRate: 0.9},
			},
		}},
	}
	if err := checkParallelFile(write(t, good)); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}

	for name, mutate := range map[string]func(*ParallelReport){
		"wrong schema":      func(r *ParallelReport) { r.Schema = "nope" },
		"no cases":          func(r *ParallelReport) { r.Cases = nil },
		"no base row":       func(r *ParallelReport) { r.Cases[0].Rows = r.Cases[0].Rows[1:] },
		"base speedup != 1": func(r *ParallelReport) { r.Cases[0].Rows[0].SpeedupVsBaseline = 1.2 },
		"hit rate > 1":      func(r *ParallelReport) { r.Cases[0].Rows[1].CacheHitRate = 1.5 },
		"missing cache control": func(r *ParallelReport) {
			r.Cases[0].NoCacheWallNSPerEpoch = 0
		},
		"pdn-phase cache regression": func(r *ParallelReport) {
			r.Cases[0].CacheSpeedupPDNPhase = 0.8
		},
		"zero wall": func(r *ParallelReport) { r.Cases[0].Rows[0].WallNSPerEpoch = 0 },
		"steady-state allocations": func(r *ParallelReport) {
			r.Cases[0].Rows[1].AllocsPerEpoch = 3
		},
	} {
		var rep ParallelReport
		var buf bytes.Buffer
		if err := writeJSON(&buf, good); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		mutate(&rep)
		if err := checkParallelFile(write(t, &rep)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := checkParallelFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
