package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestMeasureProducesCompleteBaseline(t *testing.T) {
	cases := []benchCase{{"all-on", "fft"}}
	b, err := measure(cases, 30, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Schema != "thermogater/bench/v1" {
		t.Errorf("schema = %q", back.Schema)
	}
	if len(back.Cases) != 1 {
		t.Fatalf("cases = %d, want 1", len(back.Cases))
	}
	c := back.Cases[0]
	if c.Name != "runner/all-on/fft" || c.Policy != "all-on" || c.Benchmark != "fft" {
		t.Errorf("case identity wrong: %+v", c)
	}
	if c.Epochs != 30 {
		t.Errorf("epochs = %d, want 30", c.Epochs)
	}
	if c.WallNSPerEpoch <= 0 {
		t.Errorf("wall_ns_per_epoch = %v", c.WallNSPerEpoch)
	}
	for _, ph := range []string{"uarch", "power", "governor", "vr", "thermal", "pdn"} {
		if _, ok := c.PhaseNSPerEpoch[ph]; !ok {
			t.Errorf("phase %q missing from baseline", ph)
		}
	}
	if c.ThermalSubsteps <= 0 {
		t.Errorf("thermal substeps per epoch = %v", c.ThermalSubsteps)
	}
	if c.PDNSteadySolves <= 0 {
		t.Errorf("pdn steady solves per epoch = %v", c.PDNSteadySolves)
	}
}

func TestMeasureRejectsUnknownCase(t *testing.T) {
	if _, err := measure([]benchCase{{"nope", "fft"}}, 30, 1, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := measure([]benchCase{{"all-on", "nope"}}, 30, 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
