// Command tgbench records the simulator's performance baseline from the
// telemetry layer: it runs a fixed set of short (policy, benchmark) cases
// several times, keeps each case's best repetition, and writes the
// per-epoch wall time, per-phase breakdown and solver-work counters as
// JSON. The driver for the repo's perf trajectory:
//
//	go run ./cmd/tgbench -out BENCH_baseline.json
//
// Every future perf PR reruns tgbench and compares against the committed
// baseline; the per-phase figures say *where* a speedup (or regression)
// landed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/invariant"
	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

// benchCase is one measured configuration.
type benchCase struct {
	Policy string
	Bench  string
}

// defaultCases spans the cost spectrum: all-on (no decision work), the
// oracle (heavy emergency-oracle PDN solving) and the practical policy
// (θ-profiling plus predictor work).
var defaultCases = []benchCase{
	{"all-on", "fft"},
	{"oracT", "fft"},
	{"pracVT", "lu_ncb"},
}

// CaseResult is the recorded baseline of one case (best repetition).
type CaseResult struct {
	Name              string           `json:"name"`
	Policy            string           `json:"policy"`
	Benchmark         string           `json:"benchmark"`
	Epochs            int              `json:"epochs"`
	Repetitions       int              `json:"repetitions"`
	WallNSPerEpoch    float64          `json:"wall_ns_per_epoch"`
	PhaseNSPerEpoch   map[string]int64 `json:"phase_ns_per_epoch"`
	ThermalSubsteps   float64          `json:"thermal_substeps_per_epoch"`
	PDNSteadySolves   float64          `json:"pdn_steady_solves_per_epoch"`
	PDNTransientSolve float64          `json:"pdn_transient_solves_per_epoch"`
}

// Baseline is the file tgbench writes.
type Baseline struct {
	Schema      string `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	DurationMS  int    `json:"duration_ms"`
	// Sanitizer records whether the binary was built with -tags tgsan;
	// numbers from a sanitized build are not comparable to the committed
	// baseline and must never overwrite it.
	Sanitizer bool `json:"sanitizer"`
	// FaultOverheadPct is the per-epoch wall-time cost of arming the fault
	// injector with a schedule that never fires, relative to the same run
	// with no schedule at all — the price healthy runs pay for the
	// robustness plumbing (first case only; expected ≈0).
	FaultOverheadPct float64      `json:"fault_overhead_pct"`
	Cases            []CaseResult `json:"cases"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_baseline.json", "output file (- for stdout)")
		duration = flag.Int("duration", 150, "run length per case in ms")
		reps     = flag.Int("reps", 3, "repetitions per case (best is kept)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	b, err := measure(defaultCases, *duration, *reps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgbench:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := writeBaseline(w, b); err != nil {
		fmt.Fprintln(os.Stderr, "tgbench:", err)
		os.Exit(1)
	}
	if f != nil {
		// An unchecked Close here could silently truncate the baseline.
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d cases)\n", *out, len(b.Cases))
	}
}

// measure runs every case reps times and keeps the fastest repetition.
func measure(cases []benchCase, durationMS, reps int, seed uint64) (*Baseline, error) {
	b := &Baseline{
		Schema:      "thermogater/bench/v1",
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		DurationMS:  durationMS,
		Sanitizer:   invariant.Enabled,
	}
	for _, c := range cases {
		best, err := measureCase(c, durationMS, reps, seed, nil)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", c.Policy, c.Bench, err)
		}
		b.Cases = append(b.Cases, *best)
	}
	// Armed-but-idle fault injector on the first case: one event scheduled
	// far past the end of the run, so only the plumbing cost is measured.
	// The plain variant is re-measured here rather than reusing
	// b.Cases[0]: that number was taken at process start, before the CPU
	// and allocator warmed up, and the warm-up delta dwarfs the plumbing
	// cost being measured. Back-to-back runs share machine conditions.
	idle := &fault.Schedule{Events: []fault.Event{{
		Kind:  fault.VRStuckOff,
		Epoch: durationMS + 1000,
		Unit:  0,
	}}}
	plain, err := measureCase(cases[0], durationMS, reps, seed, nil)
	if err != nil {
		return nil, fmt.Errorf("fault overhead %s/%s: %w", cases[0].Policy, cases[0].Bench, err)
	}
	armed, err := measureCase(cases[0], durationMS, reps, seed, idle)
	if err != nil {
		return nil, fmt.Errorf("fault overhead %s/%s: %w", cases[0].Policy, cases[0].Bench, err)
	}
	if plain.WallNSPerEpoch > 0 {
		b.FaultOverheadPct = 100 * (armed.WallNSPerEpoch - plain.WallNSPerEpoch) / plain.WallNSPerEpoch
	}
	return b, nil
}

func measureCase(c benchCase, durationMS, reps int, seed uint64, faults *fault.Schedule) (*CaseResult, error) {
	policy, err := core.ParsePolicy(c.Policy)
	if err != nil {
		return nil, err
	}
	bench, err := workload.ByName(c.Bench)
	if err != nil {
		return nil, err
	}
	best := &CaseResult{
		Name:           "runner/" + c.Policy + "/" + c.Bench,
		Policy:         c.Policy,
		Benchmark:      c.Bench,
		Repetitions:    reps,
		WallNSPerEpoch: math.Inf(1),
	}
	for rep := 0; rep < reps; rep++ {
		reg := telemetry.NewRegistry()
		cfg := sim.DefaultConfig(policy, bench)
		cfg.Seed = seed
		cfg.DurationMS = durationMS
		cfg.Telemetry = reg
		cfg.Faults = faults
		r, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := r.Run(); err != nil {
			return nil, err
		}
		res, err := fromSnapshot(reg.Snapshot())
		if err != nil {
			return nil, err
		}
		if res.WallNSPerEpoch < best.WallNSPerEpoch {
			res.Name, res.Policy, res.Benchmark, res.Repetitions = best.Name, best.Policy, best.Benchmark, reps
			best = res
		}
	}
	return best, nil
}

// fromSnapshot distils one run's telemetry snapshot into per-epoch figures.
func fromSnapshot(sn telemetry.Snapshot) (*CaseResult, error) {
	var epoch *telemetry.SpanSnapshot
	for i := range sn.Spans {
		if sn.Spans[i].Name == "epoch" {
			epoch = &sn.Spans[i]
		}
	}
	if epoch == nil || epoch.Count == 0 {
		return nil, fmt.Errorf("snapshot has no epoch span")
	}
	n := float64(epoch.Count)
	res := &CaseResult{
		Epochs:          epoch.Count,
		WallNSPerEpoch:  float64(epoch.TotalNS) / n,
		PhaseNSPerEpoch: make(map[string]int64, len(epoch.Children)),
	}
	for _, ph := range epoch.Children {
		res.PhaseNSPerEpoch[ph.Name] = int64(float64(ph.TotalNS) / n)
	}
	counter := func(key string) float64 {
		for _, c := range sn.Counters {
			if telemetry.Key(c.Name, c.Labels) == key {
				return c.Value
			}
		}
		return 0
	}
	res.ThermalSubsteps = counter("thermal_euler_substeps_total") / n
	res.PDNSteadySolves = counter("pdn_solves_total{kind=steady}") / n
	res.PDNTransientSolve = counter("pdn_solves_total{kind=transient}") / n
	return res, nil
}

func writeBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
