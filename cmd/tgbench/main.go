// Command tgbench records the simulator's performance baseline from the
// telemetry layer: it runs a fixed set of short (policy, benchmark) cases
// several times, keeps each case's best repetition, and writes the
// per-epoch wall time, per-phase breakdown and solver-work counters as
// JSON. The driver for the repo's perf trajectory:
//
//	go run ./cmd/tgbench -out BENCH_baseline.json
//
// Every future perf PR reruns tgbench and compares against the committed
// baseline; the per-phase figures say *where* a speedup (or regression)
// landed.
//
// Two further modes (see docs/PERFORMANCE.md for the methodology):
//
//	go run ./cmd/tgbench -parallel          # writes BENCH_parallel.json:
//	                                        # the worker-count matrix plus a
//	                                        # paired cache-disabled control,
//	                                        # with per-row speedups, the PDN
//	                                        # mask-cache hit rate, and the
//	                                        # paired-differencing steady-state
//	                                        # allocs/bytes per epoch
//	go run ./cmd/tgbench -check BENCH_parallel.json
//	                                        # CI smoke: parse the committed
//	                                        # report and assert its claims
//	                                        # are self-consistent, including
//	                                        # allocs_per_epoch < 0.5
//
// Ratios are only ever taken within one interleaved session: repetition
// r of every cell (cache off, workers 0, 2, ...) runs before repetition
// r+1 of any, so all cells sample the same machine-noise windows. A
// cross-file comparison against the committed baseline has no such
// pairing and is deliberately not computed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/invariant"
	"thermogater/internal/pdn"
	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

// benchCase is one measured configuration.
type benchCase struct {
	Policy string
	Bench  string
}

// defaultCases spans the cost spectrum: all-on (no decision work), the
// oracle (heavy emergency-oracle PDN solving) and the practical policy
// (θ-profiling plus predictor work).
var defaultCases = []benchCase{
	{"all-on", "fft"},
	{"oracT", "fft"},
	{"pracVT", "lu_ncb"},
}

// CaseResult is the recorded baseline of one case (best repetition).
type CaseResult struct {
	Name              string           `json:"name"`
	Policy            string           `json:"policy"`
	Benchmark         string           `json:"benchmark"`
	Epochs            int              `json:"epochs"`
	Repetitions       int              `json:"repetitions"`
	WallNSPerEpoch    float64          `json:"wall_ns_per_epoch"`
	PhaseNSPerEpoch   map[string]int64 `json:"phase_ns_per_epoch"`
	ThermalSubsteps   float64          `json:"thermal_substeps_per_epoch"`
	PDNSteadySolves   float64          `json:"pdn_steady_solves_per_epoch"`
	PDNTransientSolve float64          `json:"pdn_transient_solves_per_epoch"`
	// CacheHitRate is hits/(hits+misses) of the PDN per-mask resistance
	// cache over the run; 0 when the counters never moved.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// Baseline is the file tgbench writes.
type Baseline struct {
	Schema      string `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	DurationMS  int    `json:"duration_ms"`
	// Sanitizer records whether the binary was built with -tags tgsan;
	// numbers from a sanitized build are not comparable to the committed
	// baseline and must never overwrite it.
	Sanitizer bool `json:"sanitizer"`
	// NoiseFloorPct is the paired null measurement: a third cell running
	// the exact same configuration as the plain one joins every
	// interleaved round, and this records the median |per-round ratio −
	// 1| between the two identical cells — what the paired estimator
	// reports when the true effect is zero. Deltas below it (like a
	// small fault_overhead_pct, positive or negative) are measurement
	// noise, not effects.
	NoiseFloorPct float64 `json:"noise_floor_pct"`
	// FaultOverheadPct is the per-epoch wall-time cost of arming the fault
	// injector with a schedule that never fires, relative to the same run
	// with no schedule at all — the price healthy runs pay for the
	// robustness plumbing (first case only; expected within the noise
	// floor of zero).
	FaultOverheadPct float64      `json:"fault_overhead_pct"`
	Cases            []CaseResult `json:"cases"`
}

// ParallelSchema tags BENCH_parallel.json; -check rejects anything else.
const ParallelSchema = "thermogater/bench-parallel/v1"

// ParallelRow is one worker count of a case's matrix. WallNSPerEpoch is
// the cell's own best repetition; SpeedupVsBaseline is the median over
// rounds of the paired per-round ratio against the workers=0 cell (so
// the two figures are estimated differently and their quotient need not
// reproduce the ratio exactly).
type ParallelRow struct {
	Workers           int              `json:"workers"`
	WallNSPerEpoch    float64          `json:"wall_ns_per_epoch"`
	SpeedupVsBaseline float64          `json:"speedup_vs_baseline"`
	CacheHitRate      float64          `json:"cache_hit_rate"`
	PhaseNSPerEpoch   map[string]int64 `json:"phase_ns_per_epoch"`
	// AllocsPerEpoch and BytesPerEpoch are the steady-state heap cost of
	// one epoch, measured by paired differencing: the same cell runs
	// (without telemetry) at durations D and 2D with runtime.MemStats
	// read around each run, and (Δmallocs, Δbytes)/Δepochs between the
	// two cancels every fixed cost — construction, θ-profiling, warm-up
	// buffer growth, cache fill. The epoch loop's zero-allocation
	// contract (internal/sim/alloc_test.go, the allocfree lint pass)
	// pins this at ~0; -check fails any row at or above 0.5.
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	BytesPerEpoch  float64 `json:"bytes_per_epoch"`
}

// ParallelCase is one (policy, benchmark) across the worker matrix plus
// the paired cache control. The baseline of every speedup_vs_baseline is
// this file's own workers=0 cell (same binary, same machine, interleaved
// repetitions, per-round paired ratios); the cache_speedup figures
// compare that cell against the same configuration with the per-mask
// cache disabled, measured in the same interleaved session.
type ParallelCase struct {
	Name        string `json:"name"`
	Policy      string `json:"policy"`
	Benchmark   string `json:"benchmark"`
	Epochs      int    `json:"epochs"`
	Repetitions int    `json:"repetitions"`
	// NoCacheWallNSPerEpoch is the sequential run with
	// pdn.CacheDisabled — the uncached control every caching claim is
	// paired against.
	NoCacheWallNSPerEpoch float64 `json:"nocache_wall_ns_per_epoch"`
	// CacheSpeedup is uncached/cached whole-run wall time. The win is
	// diluted across all six phases, so this ratio sits near 1.
	CacheSpeedup float64 `json:"cache_speedup"`
	// CacheSpeedupPDNPhase is the same ratio on the pdn phase alone,
	// where the cached work lives; -check requires it >= 1.
	CacheSpeedupPDNPhase float64       `json:"cache_speedup_pdn_phase"`
	Rows                 []ParallelRow `json:"rows"`
}

// ParallelReport is BENCH_parallel.json.
type ParallelReport struct {
	Schema        string         `json:"schema"`
	CreatedUnix   int64          `json:"created_unix"`
	GoVersion     string         `json:"go_version"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	NumCPU        int            `json:"num_cpu"`
	DurationMS    int            `json:"duration_ms"`
	Sanitizer     bool           `json:"sanitizer"`
	NoiseFloorPct float64        `json:"noise_floor_pct"`
	WorkersMatrix []int          `json:"workers_matrix"`
	Cases         []ParallelCase `json:"cases"`
}

func main() {
	var (
		out      = flag.String("out", "", "output file (- for stdout; default BENCH_baseline.json, or BENCH_parallel.json with -parallel)")
		duration = flag.Int("duration", 150, "run length per case in ms")
		reps     = flag.Int("reps", 3, "timed repetitions per case (best is kept)")
		warmup   = flag.Int("warmup", 1, "discarded warm-up repetitions per case")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Bool("parallel", false, "measure the worker-count matrix and write a bench-parallel report")
		workers  = flag.String("workers", "0,2,4,8", "comma-separated worker counts for -parallel")
		check    = flag.String("check", "", "validate a committed bench-parallel report and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := checkParallelFile(*check); err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}

	if *out == "" {
		*out = "BENCH_baseline.json"
		if *parallel {
			*out = "BENCH_parallel.json"
		}
	}

	var payload any
	var nCases int
	if *parallel {
		matrix, err := parseWorkers(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		rep, err := measureParallel(defaultCases, *duration, *reps, *warmup, *seed, matrix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		payload, nCases = rep, len(rep.Cases)
	} else {
		b, err := measure(defaultCases, *duration, *reps, *warmup, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		payload, nCases = b, len(b.Cases)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := writeJSON(w, payload); err != nil {
		fmt.Fprintln(os.Stderr, "tgbench:", err)
		os.Exit(1)
	}
	if f != nil {
		// An unchecked Close here could silently truncate the baseline.
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d cases)\n", *out, nCases)
	}
}

func parseWorkers(s string) ([]int, error) {
	var matrix []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		matrix = append(matrix, w)
	}
	if len(matrix) == 0 {
		return nil, fmt.Errorf("empty -workers matrix")
	}
	return matrix, nil
}

// measure runs every case warmup+reps times (warm-ups discarded) and
// keeps the fastest timed repetition.
func measure(cases []benchCase, durationMS, reps, warmup int, seed uint64) (*Baseline, error) {
	b := &Baseline{
		Schema:      "thermogater/bench/v1",
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		DurationMS:  durationMS,
		Sanitizer:   invariant.Enabled,
	}
	for _, c := range cases {
		best, _, err := measureCase(c, caseOpts{durationMS: durationMS, reps: reps, warmup: warmup, seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", c.Policy, c.Bench, err)
		}
		b.Cases = append(b.Cases, *best)
	}
	// Armed-but-idle fault injector on the first case: one event scheduled
	// far past the end of the run, so only the plumbing cost is measured.
	// Plain and armed repetitions are interleaved rather than batched, and
	// the overhead is the median of the per-round paired ratios — the
	// plumbing cost is far below this machine's minute-scale drift, so
	// only adjacent-in-time pairs can resolve it at all (the recorded
	// noise_floor_pct says how little even they can resolve).
	idle := &fault.Schedule{Events: []fault.Event{{
		Kind:  fault.VRStuckOff,
		Epoch: durationMS + 1000,
		Unit:  0,
	}}}
	plainOpt := caseOpts{durationMS: durationMS, reps: reps, warmup: warmup, seed: seed}
	armedOpt := plainOpt
	armedOpt.faults = idle
	// The third cell is the null: plain again, so every round also pairs
	// two runs of the identical configuration.
	_, rounds, err := measureInterleaved(cases[0], []caseOpts{plainOpt, armedOpt, plainOpt})
	if err != nil {
		return nil, fmt.Errorf("fault overhead %s/%s: %w", cases[0].Policy, cases[0].Bench, err)
	}
	if ratio := medianRatio(rounds, 1, 0, wallOf); ratio > 0 {
		b.FaultOverheadPct = 100 * (ratio - 1)
	}
	b.NoiseFloorPct = nullFloorPct(rounds, 2, 0)
	return b, nil
}

// nullFloorPct measures the paired estimator's resolution from a null
// pair: cells a and b ran the *same* configuration in every round, so
// the median |per-round wall ratio − 1| between them is what medianRatio
// reports when the true effect is zero. A cross-cell delta below this
// floor is indistinguishable from noise on this machine.
func nullFloorPct(rounds [][]*CaseResult, a, b int) float64 {
	var devs []float64
	for _, row := range rounds {
		x, y := row[a].WallNSPerEpoch, row[b].WallNSPerEpoch
		if x > 0 && y > 0 {
			devs = append(devs, math.Abs(x/y-1))
		}
	}
	return 100 * median(devs)
}

// median of a slice; 0 when empty. The input is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return 0.5 * (s[n/2-1] + s[n/2])
	}
}

// measureParallel sweeps the worker matrix for every case, plus one
// cache-disabled sequential cell as the paired control for the caching
// claim. All cells of a case run interleaved in one session.
func measureParallel(cases []benchCase, durationMS, reps, warmup int, seed uint64, matrix []int) (*ParallelReport, error) {
	rep := &ParallelReport{
		Schema:        ParallelSchema,
		CreatedUnix:   time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		DurationMS:    durationMS,
		Sanitizer:     invariant.Enabled,
		WorkersMatrix: matrix,
	}
	for _, c := range cases {
		pc := ParallelCase{
			Name:        "pipeline/" + c.Policy + "/" + c.Bench,
			Policy:      c.Policy,
			Benchmark:   c.Bench,
			Repetitions: reps,
		}
		// Cell 0 is the cache-disabled control, cell 1 the null (a second
		// workers=0 run per round, for the noise floor), and the matrix
		// cells follow.
		base := caseOpts{durationMS: durationMS, reps: reps, warmup: warmup, seed: seed}
		nocacheOpt := base
		nocacheOpt.nocache = true
		opts := []caseOpts{nocacheOpt, base}
		for _, w := range matrix {
			o := base
			o.workers = w
			opts = append(opts, o)
		}
		bests, rounds, err := measureInterleaved(c, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.Name, err)
		}
		seqCell := -1
		for i, w := range matrix {
			if bests[i+2] == nil {
				return nil, fmt.Errorf("%s workers=%d: no timed repetitions", pc.Name, w)
			}
			if pc.Epochs == 0 {
				pc.Epochs = bests[i+2].Epochs
			}
			if w == 0 {
				seqCell = i + 2
				// The report-level floor comes from the first case's
				// null pair.
				if len(rep.Cases) == 0 {
					rep.NoiseFloorPct = nullFloorPct(rounds, 1, seqCell)
				}
			}
		}
		for i, w := range matrix {
			best := bests[i+2]
			row := ParallelRow{
				Workers:         w,
				WallNSPerEpoch:  best.WallNSPerEpoch,
				CacheHitRate:    best.CacheHitRate,
				PhaseNSPerEpoch: best.PhaseNSPerEpoch,
			}
			if seqCell >= 0 {
				row.SpeedupVsBaseline = medianRatio(rounds, seqCell, i+2, wallOf)
			}
			pc.Rows = append(pc.Rows, row)
		}
		for i := range pc.Rows {
			o := base
			o.workers = pc.Rows[i].Workers
			al, by, err := measureAllocsPerEpoch(c, o)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d allocation pass: %w", pc.Name, o.workers, err)
			}
			pc.Rows[i].AllocsPerEpoch = al
			pc.Rows[i].BytesPerEpoch = by
		}
		if nocache := bests[0]; nocache != nil && seqCell >= 0 {
			pc.NoCacheWallNSPerEpoch = nocache.WallNSPerEpoch
			pc.CacheSpeedup = medianRatio(rounds, 0, seqCell, wallOf)
			pc.CacheSpeedupPDNPhase = medianRatio(rounds, 0, seqCell, func(r *CaseResult) float64 {
				return float64(r.PhaseNSPerEpoch["pdn"])
			})
		}
		rep.Cases = append(rep.Cases, pc)
	}
	return rep, nil
}

// checkParallelFile is the CI smoke over the committed report: it must
// parse, carry the right schema, and every recorded claim must be
// self-consistent — a workers=0 row at speedup 1, monotone-sane speedups
// (the best row at least 1.0), hit rates inside [0, 1], a recorded
// cache-disabled control, and a pdn-phase caching win over it.
func checkParallelFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep ParallelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != ParallelSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, ParallelSchema)
	}
	if len(rep.Cases) == 0 {
		return fmt.Errorf("%s: no cases", path)
	}
	for _, c := range rep.Cases {
		if len(c.Rows) == 0 {
			return fmt.Errorf("%s: case %s has no rows", path, c.Name)
		}
		if c.Epochs <= 0 {
			return fmt.Errorf("%s: case %s has %d epochs", path, c.Name, c.Epochs)
		}
		bestSpeedup := 0.0
		sawBase := false
		for _, r := range c.Rows {
			if r.WallNSPerEpoch <= 0 {
				return fmt.Errorf("%s: case %s workers=%d has wall %v ns/epoch", path, c.Name, r.Workers, r.WallNSPerEpoch)
			}
			if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
				return fmt.Errorf("%s: case %s workers=%d hit rate %v outside [0,1]", path, c.Name, r.Workers, r.CacheHitRate)
			}
			if r.Workers == 0 {
				sawBase = true
				if math.Abs(r.SpeedupVsBaseline-1) > 1e-9 {
					return fmt.Errorf("%s: case %s workers=0 speedup %v, want 1", path, c.Name, r.SpeedupVsBaseline)
				}
			}
			if r.SpeedupVsBaseline > bestSpeedup {
				bestSpeedup = r.SpeedupVsBaseline
			}
			if math.Abs(r.AllocsPerEpoch) >= 0.5 {
				return fmt.Errorf("%s: case %s workers=%d allocates %.2f times per steady-state epoch — the zero-allocation contract (internal/sim/alloc_test.go, docs/PERFORMANCE.md) is broken", path, c.Name, r.Workers, r.AllocsPerEpoch)
			}
		}
		if !sawBase {
			return fmt.Errorf("%s: case %s has no workers=0 row", path, c.Name)
		}
		if bestSpeedup < 1.0 {
			return fmt.Errorf("%s: case %s best speedup %v < 1.0", path, c.Name, bestSpeedup)
		}
		if c.NoCacheWallNSPerEpoch <= 0 {
			return fmt.Errorf("%s: case %s has no cache-disabled control (%v ns/epoch)", path, c.Name, c.NoCacheWallNSPerEpoch)
		}
		if c.CacheSpeedupPDNPhase < 1.0 {
			return fmt.Errorf("%s: case %s pdn-phase cache speedup %v < 1.0 — the caching claim fails its own paired control", path, c.Name, c.CacheSpeedupPDNPhase)
		}
	}
	return nil
}

// runMallocs executes one full run without a telemetry registry (record
// emission allocates by design and would mask the epoch loop's contract)
// and returns the process-wide malloc and allocated-byte deltas across
// Run. Construction stays outside the measured window, but the paired
// differencing in measureAllocsPerEpoch would cancel it anyway.
func runMallocs(c benchCase, opt caseOpts) (mallocs, bytes uint64, err error) {
	policy, err := core.ParsePolicy(c.Policy)
	if err != nil {
		return 0, 0, err
	}
	bench, err := workload.ByName(c.Bench)
	if err != nil {
		return 0, 0, err
	}
	cfg := sim.DefaultConfig(policy, bench)
	cfg.Seed = opt.seed
	cfg.DurationMS = opt.durationMS
	cfg.Faults = opt.faults
	cfg.Workers = opt.workers
	if opt.nocache {
		cfg.PDN.MaskCacheSize = pdn.CacheDisabled
	}
	r, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if _, err := r.Run(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&m2)
	return m2.Mallocs - m1.Mallocs, m2.TotalAlloc - m1.TotalAlloc, nil
}

// measureAllocsPerEpoch runs one cell at durations D and 2D and divides
// the malloc/byte difference by the epoch difference. Every fixed cost —
// runner construction, θ-profiling (ProfilingEpochs is
// duration-independent), warm-up slice growth, LRU fill — appears in
// both runs and cancels; what remains is the marginal heap cost of one
// steady-state epoch. Exact counter arithmetic, not timing: a single
// pair suffices.
func measureAllocsPerEpoch(c benchCase, opt caseOpts) (allocs, bytes float64, err error) {
	long := opt
	long.durationMS = 2 * opt.durationMS
	a1, b1, err := runMallocs(c, opt)
	if err != nil {
		return 0, 0, err
	}
	a2, b2, err := runMallocs(c, long)
	if err != nil {
		return 0, 0, err
	}
	// EpochMS is 1.0 in DefaultConfig, so epochs == durationMS.
	dEpochs := float64(long.durationMS - opt.durationMS)
	return (float64(a2) - float64(a1)) / dEpochs, (float64(b2) - float64(b1)) / dEpochs, nil
}

// caseOpts parameterises one measurement cell.
type caseOpts struct {
	durationMS, reps, warmup, workers int
	seed                              uint64
	faults                            *fault.Schedule
	// nocache disables the PDN per-mask resistance cache — the paired
	// control for the caching claim.
	nocache bool
}

// runOnce executes one full run of a case and distils its telemetry.
func runOnce(c benchCase, opt caseOpts) (*CaseResult, error) {
	policy, err := core.ParsePolicy(c.Policy)
	if err != nil {
		return nil, err
	}
	bench, err := workload.ByName(c.Bench)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	cfg := sim.DefaultConfig(policy, bench)
	cfg.Seed = opt.seed
	cfg.DurationMS = opt.durationMS
	cfg.Telemetry = reg
	cfg.Faults = opt.faults
	cfg.Workers = opt.workers
	if opt.nocache {
		cfg.PDN.MaskCacheSize = pdn.CacheDisabled
	}
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := r.Run(); err != nil {
		return nil, err
	}
	res, err := fromSnapshot(reg.Snapshot())
	if err != nil {
		return nil, err
	}
	res.Name = "runner/" + c.Policy + "/" + c.Bench
	res.Policy, res.Benchmark = c.Policy, c.Bench
	res.Repetitions = opt.reps
	return res, nil
}

// measureInterleaved times several cells of one case round-robin:
// repetition r of every cell runs before repetition r+1 of any, so all
// cells sample the same machine-noise windows. Warm-up rounds run every
// cell and are discarded; each cell keeps its fastest timed repetition
// as its own wall figure. rounds[r][i] is cell i's result in timed round
// r — cross-cell ratios must be taken per round (adjacent runs, drift
// cancels) and aggregated with the median (see medianRatio), never
// between independently-chosen best repetitions: on a machine that
// drifts several percent minute to minute, one lucky repetition in one
// cell would otherwise set the whole figure. Repetition counts come
// from opts[0]; a cell with zero timed repetitions yields a nil best.
func measureInterleaved(c benchCase, opts []caseOpts) (bests []*CaseResult, rounds [][]*CaseResult, err error) {
	bests = make([]*CaseResult, len(opts))
	for rep := 0; rep < opts[0].warmup+opts[0].reps; rep++ {
		row := make([]*CaseResult, len(opts))
		for i, opt := range opts {
			res, err := runOnce(c, opt)
			if err != nil {
				return nil, nil, err
			}
			row[i] = res
		}
		if rep < opts[0].warmup {
			continue
		}
		rounds = append(rounds, row)
		for i, res := range row {
			if bests[i] == nil || res.WallNSPerEpoch < bests[i].WallNSPerEpoch {
				bests[i] = res
			}
		}
	}
	return bests, rounds, nil
}

// cellWalls extracts cell i's timed wall figures from the rounds, in
// round order, for noise-floor estimation.
func cellWalls(rounds [][]*CaseResult, i int) []float64 {
	walls := make([]float64, 0, len(rounds))
	for _, row := range rounds {
		walls = append(walls, row[i].WallNSPerEpoch)
	}
	return walls
}

// medianRatio aggregates a cross-cell ratio over the timed rounds:
// f(numerator cell)/f(denominator cell) within each round, median across
// rounds. Rounds where either figure is non-positive are skipped.
func medianRatio(rounds [][]*CaseResult, num, den int, f func(*CaseResult) float64) float64 {
	var ratios []float64
	for _, row := range rounds {
		n, d := f(row[num]), f(row[den])
		if n > 0 && d > 0 {
			ratios = append(ratios, n/d)
		}
	}
	return median(ratios)
}

// wallOf reads a result's per-epoch wall time (the default medianRatio
// metric).
func wallOf(r *CaseResult) float64 { return r.WallNSPerEpoch }

// measureCase returns the best timed repetition of a single cell and its
// timed wall figures.
func measureCase(c benchCase, opt caseOpts) (*CaseResult, []float64, error) {
	bests, rounds, err := measureInterleaved(c, []caseOpts{opt})
	if err != nil {
		return nil, nil, err
	}
	if bests[0] == nil {
		return nil, nil, fmt.Errorf("no timed repetitions (reps=%d)", opt.reps)
	}
	return bests[0], cellWalls(rounds, 0), nil
}

// fromSnapshot distils one run's telemetry snapshot into per-epoch figures.
func fromSnapshot(sn telemetry.Snapshot) (*CaseResult, error) {
	var epoch *telemetry.SpanSnapshot
	for i := range sn.Spans {
		if sn.Spans[i].Name == "epoch" {
			epoch = &sn.Spans[i]
		}
	}
	if epoch == nil || epoch.Count == 0 {
		return nil, fmt.Errorf("snapshot has no epoch span")
	}
	n := float64(epoch.Count)
	res := &CaseResult{
		Epochs:          epoch.Count,
		WallNSPerEpoch:  float64(epoch.TotalNS) / n,
		PhaseNSPerEpoch: make(map[string]int64, len(epoch.Children)),
	}
	for _, ph := range epoch.Children {
		res.PhaseNSPerEpoch[ph.Name] = int64(float64(ph.TotalNS) / n)
	}
	counter := func(key string) float64 {
		for _, c := range sn.Counters {
			if telemetry.Key(c.Name, c.Labels) == key {
				return c.Value
			}
		}
		return 0
	}
	res.ThermalSubsteps = counter("thermal_euler_substeps_total") / n
	res.PDNSteadySolves = counter("pdn_solves_total{kind=steady}") / n
	res.PDNTransientSolve = counter("pdn_solves_total{kind=transient}") / n
	hits := counter("pdn_mask_cache_total{kind=hit}")
	misses := counter("pdn_mask_cache_total{kind=miss}")
	if hits+misses > 0 {
		res.CacheHitRate = hits / (hits + misses)
	}
	return res, nil
}

func writeJSON(w io.Writer, payload any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
