// Command tgmap renders on-die temperature heat maps as ASCII shades —
// the textual equivalent of the paper's Fig. 12 frames. By default it
// reproduces the figure exactly: cholesky at the Tmax peak under off-chip,
// all-on, OracT and OracV. A single frame for any benchmark/policy pair is
// also available:
//
//	tgmap -bench fft -policy pracVT -res 64 -duration 500
package main

import (
	"flag"
	"fmt"
	"os"

	"thermogater/internal/core"
	"thermogater/internal/experiments"
	"thermogater/internal/report"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark (empty = the paper's Fig. 12: cholesky × four policies)")
		policy   = flag.String("policy", "all-on", "gating policy for -bench")
		res      = flag.Int("res", 84, "heat map resolution (cells per side)")
		duration = flag.Int("duration", 0, "run length in ms (0 = full ROI)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *bench == "" {
		opts := experiments.Options{DurationMS: *duration, Seed: *seed}
		frames, err := experiments.Fig12HeatMaps(opts)
		if err != nil {
			fatal(err)
		}
		for _, fr := range frames {
			title := fmt.Sprintf("Fig. 12 (%s): cholesky at Tmax=%.1f°C", fr.Policy, fr.MaxTempC)
			if err := report.RenderHeatMap(os.Stdout, title, fr.Grid); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}

	p, err := core.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig(p, prof)
	cfg.Seed = *seed
	cfg.HeatMapRes = *res
	if *duration > 0 {
		cfg.DurationMS = *duration
	}
	r, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	result, err := r.Run()
	if err != nil {
		fatal(err)
	}
	if result.HeatMap == nil {
		fatal(fmt.Errorf("no heat map captured"))
	}
	title := fmt.Sprintf("%s under %s at Tmax=%.1f°C (%s)",
		result.Benchmark, result.Policy, result.MaxTempC, result.MaxTempAt)
	if err := report.RenderHeatMap(os.Stdout, title, result.HeatMap); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgmap:", err)
	os.Exit(1)
}
