package main

// Process-level graceful-shutdown test: a real thermogater process is
// SIGTERMed mid-run, must exit 0 with a final checkpoint written and its
// telemetry flushed, and a second process resuming from that checkpoint
// must produce a stitched JSONL stream byte-identical to an
// uninterrupted run's.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildThermogater(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "thermogater")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building thermogater: %v\n%s", err, out)
	}
	return bin
}

func runArgs(jsonl string, extra ...string) []string {
	args := []string{
		"-run", "all-on", "-bench", "fft", "-duration", "2500",
		"-metrics-out", jsonl, "-frozen-clock",
	}
	return append(args, extra...)
}

func TestSIGTERMCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	bin := buildThermogater(t)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	part1 := filepath.Join(dir, "part1.jsonl")
	part2 := filepath.Join(dir, "part2.jsonl")
	ckpt := filepath.Join(dir, "run.ckpt")

	// Reference: the same run, uninterrupted.
	if out, err := exec.Command(bin, runArgs(refPath)...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference JSONL is empty")
	}

	// Victim: SIGTERM once the stream shows real progress.
	var stderr bytes.Buffer
	victim := exec.Command(bin, runArgs(part1, "-checkpoint", ckpt, "-checkpoint-every", "10")...)
	victim.Stderr = &stderr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := os.Stat(part1); err == nil && st.Size() > 4096 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(); err != nil {
		t.Fatalf("SIGTERMed run exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted after epoch") {
		t.Skip("run finished before the SIGTERM landed")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("final checkpoint not written: %v", err)
	}

	// Resume: a fresh process continues from the checkpoint to the end.
	if out, err := exec.Command(bin, runArgs(part2, "-resume", ckpt)...).CombinedOutput(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}

	// The stitched telemetry must be the uninterrupted run's, byte for
	// byte: the graceful exit flushed exactly through the checkpointed
	// epoch, and the resume emitted exactly the remainder.
	head, err := os.ReadFile(part1)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := os.ReadFile(part2)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) == 0 || len(tail) == 0 {
		t.Fatalf("degenerate split: %d + %d bytes", len(head), len(tail))
	}
	got := append(head, tail...)
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched stream %d+%d bytes differs from the %d-byte reference", len(head), len(tail), len(want))
	}
}
