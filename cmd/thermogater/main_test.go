package main

import (
	"bytes"
	"strings"
	"testing"

	"thermogater/internal/experiments"
)

func TestListAll(t *testing.T) {
	var buf bytes.Buffer
	listAll(&buf)
	out := buf.String()
	for _, want := range []string{"fig9", "table2", "aging", "dvfs", "pracVT", "cholesky"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := runSingle(&buf, "oracT", "rayt", "", 60, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oracT on raytrace", "max temperature", "avg conversion efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("run summary missing %q:\n%s", want, out)
		}
	}
	if err := runSingle(&buf, "nope", "fft", "", 60, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := runSingle(&buf, "oracT", "nope", "", 60, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSingle(&buf, "oracT", "fft", "/does/not/exist.json", 60, 1); err == nil {
		t.Error("missing profile file accepted")
	}
}

func TestRunSingleOffChipOmitsNoise(t *testing.T) {
	var buf bytes.Buffer
	if err := runSingle(&buf, "off-chip", "rayt", "", 60, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "voltage noise") {
		t.Error("off-chip summary reports voltage noise")
	}
}

func TestRunExperimentStatic(t *testing.T) {
	var buf bytes.Buffer
	opts := experiments.Options{DurationMS: 60, Seed: 1}
	for _, id := range []string{"fig1", "fig2", "fig5"} {
		if err := runExperiment(&buf, id, opts, nil); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if err := runExperiment(&buf, "fig99", opts, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("output missing Fig. 2 header")
	}
}

func TestSweepSetCoversSweepExperiments(t *testing.T) {
	for _, id := range []string{"fig7", "fig9", "fig10", "fig11", "table2", "headline"} {
		if !sweepSet[id] {
			t.Errorf("%s not marked as sweep-derived", id)
		}
	}
	if sweepSet["fig1"] {
		t.Error("fig1 wrongly marked sweep-derived")
	}
}

func TestRunExperimentsNonSweepPath(t *testing.T) {
	var buf bytes.Buffer
	opts := experiments.Options{DurationMS: 60, Seed: 1}
	if err := runExperiments(&buf, "fig5", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("output missing Fig. 5")
	}
	if strings.Contains(buf.String(), "running full policy sweep") {
		t.Error("static experiment triggered the sweep")
	}
	if err := runExperiments(&buf, "fig99", opts); err == nil {
		t.Error("unknown experiment accepted")
	}
}
