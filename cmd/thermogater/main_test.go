package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermogater/internal/experiments"
	"thermogater/internal/invariant"
)

func TestListAll(t *testing.T) {
	var buf bytes.Buffer
	listAll(&buf)
	out := buf.String()
	for _, want := range []string{"fig9", "table2", "aging", "dvfs", "pracVT", "cholesky"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

// single builds the options for a plain runSingle call.
func single(policy, bench, profilePath string, duration int) options {
	return options{runPolicy: policy, bench: bench, profile: profilePath, duration: duration, seed: 1}
}

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := runSingle(&buf, nil, single("oracT", "rayt", "", 60)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oracT on raytrace", "max temperature", "avg conversion efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("run summary missing %q:\n%s", want, out)
		}
	}
	if err := runSingle(&buf, nil, single("nope", "fft", "", 60)); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := runSingle(&buf, nil, single("oracT", "nope", "", 60)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := runSingle(&buf, nil, single("oracT", "fft", "/does/not/exist.json", 60)); err == nil {
		t.Error("missing profile file accepted")
	}
}

func TestRunSingleOffChipOmitsNoise(t *testing.T) {
	var buf bytes.Buffer
	if err := runSingle(&buf, nil, single("off-chip", "rayt", "", 60)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "voltage noise") {
		t.Error("off-chip summary reports voltage noise")
	}
}

func TestRunSingleFaultSchedule(t *testing.T) {
	var buf bytes.Buffer
	o := single("pracT", "fft", "", 60)
	o.faults = "vr-stuck-off@25:unit=5;sensor-dropout@25+20:unit=5"
	if err := runSingle(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault events fired", "sensor fallbacks"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("faulted run summary missing %q:\n%s", want, buf.String())
		}
	}
	o.faults = "not-a-fault@0"
	if err := runSingle(&buf, nil, o); err == nil {
		t.Error("malformed fault schedule accepted")
	}
}

func TestRunSingleCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	var buf bytes.Buffer
	o := single("oracT", "fft", "", 60)
	o.checkpoint = path
	o.ckptEvery = 20
	if err := runSingle(&buf, nil, o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	// Resuming from the last snapshot replays only the tail and must
	// reach the same summary as the uninterrupted run.
	var resumed bytes.Buffer
	ro := single("oracT", "fft", "", 60)
	ro.resume = path
	if err := runSingle(&resumed, nil, ro); err != nil {
		t.Fatal(err)
	}
	if buf.String() != resumed.String() {
		t.Errorf("resumed summary differs:\n--- full ---\n%s--- resumed ---\n%s", buf.String(), resumed.String())
	}

	ro.resume = filepath.Join(dir, "missing.ckpt")
	if err := runSingle(&resumed, nil, ro); err == nil {
		t.Error("missing checkpoint file accepted")
	}

	// A checkpoint from a different run identity must be rejected.
	wrong := single("pracT", "fft", "", 60)
	wrong.resume = path
	if err := runSingle(&resumed, nil, wrong); err == nil {
		t.Error("checkpoint restored into a different policy")
	}
}

func TestRunExperimentStatic(t *testing.T) {
	var buf bytes.Buffer
	opts := experiments.Options{DurationMS: 60, Seed: 1}
	for _, id := range []string{"fig1", "fig2", "fig5"} {
		if err := runExperiment(&buf, id, opts, nil); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if err := runExperiment(&buf, "fig99", opts, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("output missing Fig. 2 header")
	}
}

func TestSweepSetCoversSweepExperiments(t *testing.T) {
	for _, id := range []string{"fig7", "fig9", "fig10", "fig11", "table2", "headline"} {
		if !sweepSet[id] {
			t.Errorf("%s not marked as sweep-derived", id)
		}
	}
	if sweepSet["fig1"] {
		t.Error("fig1 wrongly marked sweep-derived")
	}
}

func TestRunExperimentsNonSweepPath(t *testing.T) {
	var buf bytes.Buffer
	opts := experiments.Options{DurationMS: 60, Seed: 1}
	if err := runExperiments(&buf, "fig5", opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("output missing Fig. 5")
	}
	if strings.Contains(buf.String(), "running full policy sweep") {
		t.Error("static experiment triggered the sweep")
	}
	if err := runExperiments(&buf, "fig99", opts); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExecuteMetricsJSONLStream(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "m.jsonl")
	csvPath := filepath.Join(dir, "m.csv")
	var buf bytes.Buffer
	err := execute(&buf, options{
		runPolicy:  "oracT",
		bench:      "fft",
		duration:   60,
		seed:       1,
		metrics:    true,
		metricsOut: jsonl,
		metricsCSV: csvPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spans:") || !strings.Contains(buf.String(), "epoch") {
		t.Error("-metrics summary missing span tree")
	}

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var n int
	var totalWall, totalPhases float64
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", n+1, err)
		}
		if rec["record"] != "epoch" {
			t.Fatalf("line %d record = %v", n+1, rec["record"])
		}
		wall := rec["wall_ns"].(float64)
		var phases float64
		for _, k := range []string{"uarch_ns", "power_ns", "governor_ns", "vr_ns", "thermal_ns", "pdn_ns"} {
			v, ok := rec[k].(float64)
			if !ok {
				t.Fatalf("line %d missing %s", n+1, k)
			}
			phases += v
		}
		if phases > wall {
			t.Errorf("epoch %v: phase sum %.0fns exceeds wall %.0fns", rec["epoch"], phases, wall)
		}
		totalWall += wall
		totalPhases += phases
		n++
	}
	if n != 60 {
		t.Fatalf("JSONL stream has %d epoch records, want 60", n)
	}
	// The acceptance bar: per-phase durations must cover ≥90% of the
	// measured epoch wall time. Assert it on the aggregate — individual
	// sub-millisecond epochs can be preempted between two spans by the
	// scheduler, which the aggregate absorbs. The sanitizer build (-tags
	// tgsan) runs its composite checks between spans, so the bar only
	// applies to the default build.
	if !invariant.Enabled && totalPhases < 0.9*totalWall {
		t.Errorf("phases cover %.1f%% of total epoch wall time, want >= 90%%",
			100*totalPhases/totalWall)
	}

	csvBytes, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvBytes)), "\n")
	if len(lines) != 61 { // header + 60 epochs
		t.Fatalf("CSV stream has %d lines, want 61", len(lines))
	}
	if !strings.HasPrefix(lines[0], "record,epoch,time_ms") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
}

func TestExecuteCPUAndHeapProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	heap := filepath.Join(dir, "heap.out")
	var buf bytes.Buffer
	err := execute(&buf, options{
		runPolicy: "oracT",
		bench:     "fft",
		duration:  60,
		seed:      1,
		cpuProf:   cpu,
		memProf:   heap,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestExecuteExperimentEmitsRunRecords(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "runs.jsonl")
	var buf bytes.Buffer
	err := execute(&buf, options{
		experiment: "fig6",
		duration:   60,
		seed:       1,
		metrics:    true,
		metricsOut: jsonl,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var runs int
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec["record"] == "run" {
			runs++
			if rec["policy"] == "" || rec["wall_ns"].(float64) <= 0 {
				t.Errorf("run record incomplete: %v", rec)
			}
		}
	}
	if runs == 0 {
		t.Fatal("experiment emitted no run records")
	}
}
