// Command thermogater runs the reproduction's experiments and single
// simulations from the command line.
//
// Regenerate a figure or table of the paper:
//
//	thermogater -experiment fig9 -duration 500
//	thermogater -experiment table2
//	thermogater -experiment all
//
// Run one benchmark under one policy:
//
//	thermogater -run pracVT -bench lu_ncb -duration 1000
//
// Observe where the time goes (see docs/OBSERVABILITY.md):
//
//	thermogater -run pracVT -bench lu_ncb -metrics -metrics-out m.jsonl
//	thermogater -run pracVT -bench lu_ncb -cpuprofile cpu.out
//	thermogater -experiment fig9 -pprof localhost:6060
//
// Inject faults and checkpoint/resume a single run (see
// docs/ROBUSTNESS.md):
//
//	thermogater -run pracT -bench lu_ncb -faults 'vr-stuck-off@30:unit=12'
//	thermogater -run pracVT -bench lu_ncb -checkpoint run.ckpt -checkpoint-every 200
//	thermogater -run pracVT -bench lu_ncb -resume run.ckpt
//
// List what is available:
//
//	thermogater -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/experiments"
	"thermogater/internal/fault"
	"thermogater/internal/report"
	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to regenerate: fig1,fig2,fig5..fig15,table2,headline,aging,dvfs,all")
		runPolicy  = flag.String("run", "", "run a single simulation under this policy")
		bench      = flag.String("bench", "lu_ncb", "benchmark for -run")
		profile    = flag.String("profile", "", "JSON workload profile file for -run (overrides -bench)")
		duration   = flag.Int("duration", 0, "run length in ms (0 = full 3000ms region of interest)")
		seed       = flag.Uint64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiments, policies and benchmarks")
		metrics    = flag.Bool("metrics", false, "enable telemetry; print the metrics summary (counters, per-phase span tree) at exit")
		metricsOut = flag.String("metrics-out", "", "stream telemetry records as JSON lines to this file (per-epoch for -run, per-run for -experiment); implies -metrics")
		metricsCSV = flag.String("metrics-csv", "", "stream the same telemetry records as CSV to this file; implies -metrics")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		faults     = flag.String("faults", "", "fault schedule for -run, e.g. 'vr-stuck-off@30:unit=12;sensor-noise@0:value=0.1' (see docs/ROBUSTNESS.md)")
		checkpoint = flag.String("checkpoint", "", "write periodic checkpoints of the -run simulation to this file")
		ckptEvery  = flag.Int("checkpoint-every", 500, "checkpoint period in epochs for -checkpoint")
		resume     = flag.String("resume", "", "resume the -run simulation from this checkpoint file")
		frozen     = flag.Bool("frozen-clock", false, "pin telemetry clocks to the Unix epoch (byte-deterministic JSONL; for resume tests)")
	)
	flag.Parse()

	if *experiment == "" && *runPolicy == "" && !*list {
		flag.Usage()
		os.Exit(2)
	}
	if err := execute(os.Stdout, options{
		experiment: strings.ToLower(*experiment),
		runPolicy:  *runPolicy,
		bench:      *bench,
		profile:    *profile,
		duration:   *duration,
		seed:       *seed,
		parallel:   *parallel,
		list:       *list,
		metrics:    *metrics || *metricsOut != "" || *metricsCSV != "",
		metricsOut: *metricsOut,
		metricsCSV: *metricsCSV,
		pprofAddr:  *pprofAddr,
		cpuProf:    *cpuProf,
		memProf:    *memProf,
		faults:     *faults,
		checkpoint: *checkpoint,
		ckptEvery:  *ckptEvery,
		resume:     *resume,
		frozen:     *frozen,
	}); err != nil {
		fatal(err)
	}
}

type options struct {
	experiment string
	runPolicy  string
	bench      string
	profile    string
	duration   int
	seed       uint64
	parallel   int
	list       bool
	metrics    bool
	metricsOut string
	metricsCSV string
	pprofAddr  string
	cpuProf    string
	memProf    string
	faults     string
	checkpoint string
	ckptEvery  int
	resume     string
	frozen     bool
}

// execute wires up observability (telemetry registry, pprof endpoints,
// profile capture), dispatches the requested work, and tears everything
// down in order so deferred cleanups run even on error paths.
func execute(w io.Writer, o options) error {
	var reg *telemetry.Registry
	if o.metrics {
		reg = telemetry.NewRegistry()
		if o.frozen {
			epoch := time.Unix(0, 0)
			reg.SetClock(func() time.Time { return epoch })
		}
		for _, out := range []struct {
			path string
			mk   func(io.Writer) telemetry.Sink
		}{
			{o.metricsOut, func(w io.Writer) telemetry.Sink { return telemetry.NewJSONLSink(w) }},
			{o.metricsCSV, func(w io.Writer) telemetry.Sink { return telemetry.NewCSVSink(w) }},
		} {
			if out.path == "" {
				continue
			}
			f, err := os.Create(out.path)
			if err != nil {
				return err
			}
			// Registered before reg.Close below, so LIFO order closes the
			// file only after the registry's final flush — and a short
			// write of the metrics file is reported, not swallowed.
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "thermogater: metrics file:", err)
				}
			}()
			reg.AddSink(out.mk(f))
		}
		defer func() {
			if err := reg.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: telemetry:", err)
			}
		}()
	}

	if o.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", o.pprofAddr)
	}
	if o.cpuProf != "" {
		f, err := os.Create(o.cpuProf)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: cpu profile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProf != "" {
		defer func() {
			f, err := os.Create(o.memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: heap profile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "thermogater: heap profile:", err)
			}
		}()
	}

	var err error
	switch {
	case o.list:
		listAll(w)
	case o.runPolicy != "":
		err = runSingle(w, reg, o)
	case o.experiment != "":
		opts := experiments.Options{DurationMS: o.duration, Seed: o.seed, Parallel: o.parallel, Telemetry: reg}
		err = runExperiments(w, o.experiment, opts)
	}
	if err != nil {
		return err
	}
	if reg.Enabled() {
		fmt.Fprintln(w)
		return telemetry.WriteSummary(w, reg.Snapshot())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermogater:", err)
	os.Exit(1)
}

func listAll(w io.Writer) {
	fmt.Fprintln(w, "experiments: fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table2 headline aging dvfs all")
	fmt.Fprint(w, "policies:   ")
	for _, p := range core.AllPolicies() {
		fmt.Fprintf(w, " %s", p)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "benchmarks: ")
	for _, p := range workload.Suite() {
		fmt.Fprintf(w, " %s", p.Name)
	}
	fmt.Fprintln(w)
}

// writeCheckpointFile atomically replaces path with the encoded snapshot,
// so a kill mid-write leaves the previous checkpoint intact.
func writeCheckpointFile(path string, cp *sim.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cp.Encode(f); err != nil {
		//lint:ignore errsink the encode error is the one worth reporting
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func runSingle(w io.Writer, reg *telemetry.Registry, o options) error {
	p, err := core.ParsePolicy(o.runPolicy)
	if err != nil {
		return err
	}
	var prof workload.Profile
	if o.profile != "" {
		f, err := os.Open(o.profile)
		if err != nil {
			return err
		}
		//lint:ignore errsink read-only file: Close cannot lose data and its error carries no signal
		defer f.Close()
		prof, err = workload.ReadProfile(f)
		if err != nil {
			return err
		}
	} else {
		prof, err = workload.ByName(o.bench)
		if err != nil {
			return err
		}
	}
	cfg := sim.DefaultConfig(p, prof)
	cfg.Seed = o.seed
	cfg.Telemetry = reg
	if o.duration > 0 {
		cfg.DurationMS = o.duration
	}
	if o.faults != "" {
		sched, err := fault.ParseSchedule(o.faults)
		if err != nil {
			return err
		}
		cfg.Faults = sched
	}
	if o.checkpoint != "" {
		path := o.checkpoint
		cfg.Checkpoint = sim.CheckpointConfig{
			EveryEpochs: o.ckptEvery,
			Sink: func(cp *sim.Checkpoint) error {
				return writeCheckpointFile(path, cp)
			},
		}
	}
	r, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if o.resume != "" {
		f, err := os.Open(o.resume)
		if err != nil {
			return err
		}
		//lint:ignore errsink read-only file: Close cannot lose data and its error carries no signal
		defer f.Close()
		cp, err := sim.ReadCheckpoint(f)
		if err != nil {
			return err
		}
		if err := r.Restore(cp); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "thermogater: resuming %s/%s from epoch %d\n", cp.Policy, cp.Benchmark, cp.Epoch+1)
	}
	// SIGINT/SIGTERM cancels the run at the next epoch boundary instead of
	// killing the process mid-write: a final checkpoint lands (with
	// -checkpoint), telemetry flushes through execute's deferred close,
	// and the process exits 0 so supervisors treat the stop as clean.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	res, err := r.RunContext(ctx)
	var ce *sim.CancelError
	if errors.As(err, &ce) {
		if o.checkpoint != "" && ce.Checkpoint != nil {
			if werr := writeCheckpointFile(o.checkpoint, ce.Checkpoint); werr != nil {
				return fmt.Errorf("writing final checkpoint: %w", werr)
			}
			fmt.Fprintf(os.Stderr, "thermogater: interrupted after epoch %d; resume with -resume %s\n", ce.Epoch, o.checkpoint)
		} else {
			fmt.Fprintf(os.Stderr, "thermogater: interrupted after epoch %d (no -checkpoint file to resume from)\n", ce.Epoch)
		}
		return nil
	}
	if err != nil {
		return err
	}
	t := &report.Table{
		ID:      "Run",
		Title:   fmt.Sprintf("%s on %s (%d measured epochs)", res.Policy, res.Benchmark, res.Epochs),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("max temperature (°C)", fmt.Sprintf("%.2f at %s", res.MaxTempC, res.MaxTempAt))
	t.AddRow("max thermal gradient (°C)", fmt.Sprintf("%.2f", res.MaxGradientC))
	if res.NoiseModeled {
		t.AddRow("max voltage noise (%Vdd)", fmt.Sprintf("%.2f", res.MaxNoisePct))
		t.AddRow("time in voltage emergencies (%)", fmt.Sprintf("%.4f", res.EmergencyFrac*100))
		t.AddRow("avg conversion loss (W)", fmt.Sprintf("%.2f", res.AvgPlossW))
		t.AddRow("avg conversion efficiency", fmt.Sprintf("%.4f", res.AvgEta))
	}
	t.AddRow("avg chip power (W)", fmt.Sprintf("%.1f", res.AvgChipPowerW))
	if res.ThetaMeanR2 > 0 {
		t.AddRow("theta predictor R²", fmt.Sprintf("%.3f", res.ThetaMeanR2))
	}
	if res.FaultEvents > 0 {
		t.AddRow("fault events fired", fmt.Sprintf("%d", res.FaultEvents))
		t.AddRow("sensor fallbacks", fmt.Sprintf("%d", res.SensorFallbacks))
		t.AddRow("trace-gap frames", fmt.Sprintf("%d", res.TraceGapFrames))
		t.AddRow("thermal fail-safe overrides", fmt.Sprintf("%d", res.ThermalOverrides))
		t.AddRow("demand violations", fmt.Sprintf("%d", res.DemandViolations))
	}
	if res.WatchdogRetries > 0 {
		t.AddRow("thermal watchdog retries", fmt.Sprintf("%d", res.WatchdogRetries))
	}
	return t.Render(w)
}

// sweepSet lists the experiments that share the full policy sweep.
var sweepSet = map[string]bool{
	"fig7": true, "fig9": true, "fig10": true, "fig11": true,
	"table2": true, "headline": true,
}

func runExperiments(w io.Writer, which string, opts experiments.Options) error {
	ids := []string{which}
	if which == "all" {
		ids = []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table2", "headline"}
	}
	var sweep *experiments.Sweep
	needSweep := false
	for _, id := range ids {
		if sweepSet[id] {
			needSweep = true
		}
	}
	if needSweep {
		fmt.Fprintln(w, "running full policy sweep (14 benchmarks × 8 policies)...")
		var err error
		sweep, err = experiments.RunSweep(experiments.SweepPolicies(), opts)
		if err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := runExperiment(w, id, opts, sweep); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runExperiment(w io.Writer, id string, opts experiments.Options, sweep *experiments.Sweep) error {
	renderFig := func(f *report.Figure, err error) error {
		if err != nil {
			return err
		}
		return f.Render(w)
	}
	renderTab := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		return t.Render(w)
	}
	switch id {
	case "fig1":
		return renderFig(experiments.Fig1EfficiencySurvey())
	case "fig2":
		return renderFig(experiments.Fig2MultiPhase())
	case "fig5":
		return renderFig(experiments.Fig5Calibration())
	case "fig6":
		return renderFig(experiments.Fig6ActiveRegulators(opts))
	case "fig7":
		return renderTab(sweep.Fig7PlossSaving())
	case "fig8":
		return renderFig(experiments.Fig8NaiveProfile(opts))
	case "fig9":
		return renderTab(sweep.Fig9Tmax())
	case "fig10":
		return renderTab(sweep.Fig10Gradient())
	case "fig11":
		return renderTab(sweep.Fig11VoltageNoise())
	case "fig12":
		frames, err := experiments.Fig12HeatMaps(opts)
		if err != nil {
			return err
		}
		for _, fr := range frames {
			title := fmt.Sprintf("Fig. 12 (%s): cholesky heat map at Tmax=%.1f°C", fr.Policy, fr.MaxTempC)
			if err := report.RenderHeatMap(w, title, fr.Grid); err != nil {
				return err
			}
		}
		return nil
	case "fig13":
		return renderFig(experiments.Fig13ActivityBins(opts))
	case "fig14":
		return renderFig(experiments.Fig14NoiseTransient(opts))
	case "fig15":
		return renderFig(experiments.Fig15LDOvsFIVR(opts))
	case "table2":
		return renderTab(sweep.Table2Emergencies())
	case "aging":
		return renderTab(experiments.AgingComparison("lu_ncb", opts))
	case "dvfs":
		return renderTab(experiments.DVFSComparison("raytrace", opts))
	case "headline":
		h, err := sweep.Headline(0.90)
		if err != nil {
			return err
		}
		return h.Table().Render(w)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}
